//! Spans, the modelled-time tracer, and the bounded span ring.
//!
//! A [`Tracer`] owns a *modelled* nanosecond clock: time only moves when the
//! instrumented pipeline calls [`Tracer::advance`] with a service time derived
//! from the hardware model (ledger deltas, device bandwidths, modelled retry
//! backoff). No wall clock is ever read, so a trace taken from a seeded run is
//! byte-identical across machines and repetitions.
//!
//! Spans are strictly nested (LIFO): [`Tracer::begin`] pushes an open span,
//! [`Tracer::end`] pops it, records it into a bounded ring, and folds its
//! timing into the critical-path accumulator. A disabled tracer turns every
//! call into an early-return on one boolean — cheap enough to leave the call
//! sites unconditional on hot paths.

use crate::critical::{CriticalPathAnalyzer, CriticalPathReport};

/// How a [`Tracer`] behaves; embedded in the system configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record spans at all. When `false` every tracer call is a no-op.
    pub enabled: bool,
    /// Completed spans kept in memory. When the ring is full the oldest
    /// span is overwritten and `trace.dropped_spans` grows; critical-path
    /// accounting is unaffected (it folds in at span end, before the ring).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Tracing on, default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing on with an explicit ring capacity (clamped to ≥ 1).
    pub fn with_capacity(ring_capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: ring_capacity.max(1),
        }
    }
}

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, byte sizes, LBAs).
    U64(u64),
    /// Floating point (ratios).
    F64(f64),
    /// Boolean flag (`dedup_hit`, `nic_buffer_hit`).
    Bool(bool),
    /// Short string (error kind, compression encoding).
    Str(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

/// One completed span: a stage of one request's journey through the
/// pipeline, in modelled nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique per-tracer span id (1-based, in begin order).
    pub id: u64,
    /// Id of the enclosing span, or `None` for a root span.
    pub parent: Option<u64>,
    /// Stage name (`write`, `read`, `nic`, `hash`, `cache`, `table_ssd`,
    /// `hwtree`, `compress`, `ssd`, ...).
    pub name: &'static str,
    /// Modelled start time.
    pub start_ns: u64,
    /// Modelled end time (`end_ns >= start_ns`).
    pub end_ns: u64,
    /// Key/value attributes in record order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in modelled nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Looks up an attribute by key (first match).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Handle to an open span returned by [`Tracer::begin`]; pass it back to
/// [`Tracer::end`]. Tokens are positional, so spans must close LIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unclosed span never reaches the ring; pass the token to Tracer::end"]
pub struct SpanToken {
    idx: u32,
}

impl SpanToken {
    const NONE: SpanToken = SpanToken { idx: u32::MAX };

    fn is_none(self) -> bool {
        self.idx == u32::MAX
    }

    /// Checked conversion from a span-stack depth. `None` when the depth
    /// does not fit a token — either past `u32::MAX` or exactly at it,
    /// which would alias the `NONE` sentinel and silently close the
    /// wrong span later.
    fn from_depth(depth: usize) -> Option<SpanToken> {
        let idx = u32::try_from(depth).ok()?;
        (idx != u32::MAX).then_some(SpanToken { idx })
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    /// Total modelled time covered by already-closed children.
    child_ns: u64,
    /// Root spans only: per-stage self-time of closed descendants,
    /// accumulated by stage name.
    stages: Vec<(&'static str, u64)>,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Fixed-capacity ring of completed spans (drop-oldest).
#[derive(Debug, Clone)]
struct SpanRing {
    cap: usize,
    buf: Vec<SpanRecord>,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl SpanRing {
    fn new(cap: usize) -> Self {
        SpanRing {
            cap: cap.max(1),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The newest `n` records, oldest-of-those first, without copying
    /// the whole ring.
    fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let n = n.min(self.buf.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let idx = (self.head + self.buf.len() - n + i) % self.buf.len().max(1);
            out.push(self.buf[idx].clone());
        }
        out
    }
}

/// The span tracer: modelled clock + open-span stack + bounded ring +
/// critical-path accumulator.
///
/// # Examples
///
/// ```
/// use fidr_trace::{TraceConfig, Tracer};
///
/// let mut t = Tracer::new(TraceConfig::enabled());
/// let op = t.begin("write");
/// let nic = t.begin("nic");
/// t.advance(250);
/// t.end(nic);
/// t.attr(op, "dedup_hit", true);
/// t.end(op);
///
/// let spans = t.spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[1].name, "write");
/// assert_eq!(spans[1].duration_ns(), 250);
/// assert_eq!(spans[0].parent, Some(spans[1].id));
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    now_ns: u64,
    next_id: u64,
    stack: Vec<OpenSpan>,
    ring: SpanRing,
    analyzer: CriticalPathAnalyzer,
    recorded: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// Builds a tracer from a config.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            enabled: cfg.enabled,
            now_ns: 0,
            next_id: 1,
            stack: Vec::new(),
            ring: SpanRing::new(cfg.ring_capacity),
            analyzer: CriticalPathAnalyzer::new(),
            recorded: 0,
        }
    }

    /// A no-op tracer: every call early-returns.
    pub fn disabled() -> Self {
        Tracer::new(TraceConfig::default())
    }

    /// Whether spans are being recorded. Instrumentation that must compute
    /// inputs for [`advance`](Tracer::advance) (ledger deltas, etc.) should
    /// gate that work on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current modelled time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Opens a span as a child of the innermost open span (or as a root).
    #[inline]
    pub fn begin(&mut self, name: &'static str) -> SpanToken {
        if !self.enabled {
            return SpanToken::NONE;
        }
        // A depth that cannot be represented as a token would silently
        // alias another span (or the NONE sentinel) on `end`; drop the
        // span into the existing `trace.dropped_spans` accounting instead.
        let Some(token) = SpanToken::from_depth(self.stack.len()) else {
            self.ring.dropped += 1;
            return SpanToken::NONE;
        };
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.stack.last().map(|s| s.id);
        self.stack.push(OpenSpan {
            id,
            parent,
            name,
            start_ns: self.now_ns,
            child_ns: 0,
            stages: Vec::new(),
            attrs: Vec::new(),
        });
        token
    }

    /// Advances the modelled clock; the elapsed time lands in the innermost
    /// open span's self-time.
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.now_ns += ns;
    }

    /// Attaches an attribute to an open span.
    #[inline]
    pub fn attr(&mut self, token: SpanToken, key: &'static str, value: impl Into<AttrValue>) {
        if !self.enabled || token.is_none() {
            return;
        }
        if let Some(span) = self.stack.get_mut(token.idx as usize) {
            span.attrs.push((key, value.into()));
        }
    }

    /// Closes a span. Any child spans still open above it are closed first
    /// (keeps the stack consistent on early-return error paths).
    #[inline]
    pub fn end(&mut self, token: SpanToken) {
        if !self.enabled || token.is_none() {
            return;
        }
        let idx = token.idx as usize;
        if idx >= self.stack.len() {
            return; // already closed by an enclosing early end
        }
        while self.stack.len() > idx {
            self.end_top();
        }
    }

    fn end_top(&mut self) {
        let span = self.stack.pop().expect("end_top on non-empty stack");
        let dur = self.now_ns - span.start_ns;
        let self_ns = dur.saturating_sub(span.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += dur;
        }
        if let Some(root) = self.stack.first_mut() {
            // Attribute this span's self-time to its stage, on the root op.
            accumulate_stage(&mut root.stages, span.name, self_ns);
        } else {
            // Root closed: fold the whole op into the critical-path model.
            let mut stages = span.stages.clone();
            if self_ns > 0 {
                accumulate_stage(&mut stages, "host", self_ns);
            }
            self.analyzer.record_op(span.name, dur, &stages);
        }
        self.recorded += 1;
        self.ring.push(SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name,
            start_ns: span.start_ns,
            end_ns: self.now_ns,
            attrs: span.attrs,
        });
    }

    /// Completed spans still held by the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.in_order()
    }

    /// The newest `n` completed spans (fewer if the ring holds fewer),
    /// oldest-of-those first — what a slow-request exemplar capture
    /// wants: the request's own subtree sits at the tail of the ring
    /// the moment its root span closes.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        self.ring.recent(n)
    }

    /// Spans evicted from the ring (the `trace.dropped_spans` counter).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped
    }

    /// Total spans completed, including any later dropped from the ring.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Critical-path breakdown over every completed root span (immune to
    /// ring drops).
    pub fn critical_path(&self) -> CriticalPathReport {
        self.analyzer.report()
    }

    /// Renders the ring contents as Chrome-trace-event JSON (see
    /// [`crate::chrome_trace_json`]).
    pub fn export_chrome_json(&self) -> String {
        crate::export::chrome_trace_json(&self.spans())
    }
}

fn accumulate_stage(stages: &mut Vec<(&'static str, u64)>, name: &'static str, ns: u64) {
    if let Some(entry) = stages.iter_mut().find(|(n, _)| *n == name) {
        entry.1 += ns;
    } else {
        stages.push((name, ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let mut t = Tracer::disabled();
        let tok = t.begin("write");
        t.advance(100);
        t.attr(tok, "lba", 7u64);
        t.end(tok);
        assert_eq!(t.now_ns(), 0);
        assert!(t.spans().is_empty());
        assert_eq!(t.recorded(), 0);
        assert!(t.critical_path().classes.is_empty());
    }

    #[test]
    fn nesting_assigns_parents_and_times() {
        let mut t = Tracer::new(TraceConfig::enabled());
        let root = t.begin("write");
        t.advance(10);
        let child = t.begin("nic");
        t.advance(30);
        let grandchild = t.begin("hash");
        t.advance(5);
        t.end(grandchild);
        t.end(child);
        t.advance(2);
        t.end(root);

        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        let hash = &spans[0];
        let nic = &spans[1];
        let write = &spans[2];
        assert_eq!((hash.name, nic.name, write.name), ("hash", "nic", "write"));
        assert_eq!(hash.parent, Some(nic.id));
        assert_eq!(nic.parent, Some(write.id));
        assert_eq!(write.parent, None);
        assert_eq!(write.duration_ns(), 47);
        assert_eq!(nic.duration_ns(), 35);
        assert_eq!(hash.duration_ns(), 5);
        // Child intervals nest within the parent's.
        assert!(nic.start_ns >= write.start_ns && nic.end_ns <= write.end_ns);
        assert!(hash.start_ns >= nic.start_ns && hash.end_ns <= nic.end_ns);
    }

    #[test]
    fn ending_a_parent_closes_open_children() {
        let mut t = Tracer::new(TraceConfig::enabled());
        let root = t.begin("write");
        let _child = t.begin("nic");
        t.advance(8);
        t.end(root); // error path: child never explicitly ended
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "nic");
        assert_eq!(spans[1].name, "write");
        assert_eq!(spans[0].duration_ns(), 8);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Tracer::new(TraceConfig::with_capacity(4));
        for i in 0..10u64 {
            let tok = t.begin("write");
            t.attr(tok, "seq", i);
            t.advance(1);
            t.end(tok);
        }
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        // Oldest-first order, holding the last four ops.
        let seqs: Vec<u64> = spans
            .iter()
            .map(|s| match s.attr("seq") {
                Some(AttrValue::U64(v)) => *v,
                other => panic!("seq attr missing: {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // The analyzer saw every op, not just the survivors.
        let report = t.critical_path();
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].ops, 10);
    }

    #[test]
    fn recent_returns_the_ring_tail_wrapped_or_not() {
        let mut t = Tracer::new(TraceConfig::with_capacity(4));
        let take_seqs = |t: &Tracer, n: usize| -> Vec<u64> {
            t.recent(n)
                .iter()
                .map(|s| match s.attr("seq") {
                    Some(AttrValue::U64(v)) => *v,
                    other => panic!("seq attr missing: {other:?}"),
                })
                .collect()
        };
        for i in 0..3u64 {
            let tok = t.begin("write");
            t.attr(tok, "seq", i);
            t.end(tok);
        }
        // Not yet wrapped.
        assert_eq!(take_seqs(&t, 2), vec![1, 2]);
        assert_eq!(take_seqs(&t, 10), vec![0, 1, 2]);
        for i in 3..9u64 {
            let tok = t.begin("write");
            t.attr(tok, "seq", i);
            t.end(tok);
        }
        // Wrapped: ring holds 5..=8, tail is the newest.
        assert_eq!(take_seqs(&t, 2), vec![7, 8]);
        assert_eq!(take_seqs(&t, 4), vec![5, 6, 7, 8]);
        assert!(Tracer::disabled().recent(3).is_empty());
    }

    #[test]
    fn self_time_feeds_host_stage() {
        let mut t = Tracer::new(TraceConfig::enabled());
        let root = t.begin("write");
        t.advance(40); // root self-time
        let c = t.begin("ssd");
        t.advance(60);
        t.end(c);
        t.end(root);
        let report = t.critical_path();
        let class = &report.classes[0];
        assert_eq!(class.total_ns, 100);
        let by_name: Vec<(&str, u64)> = class
            .stages
            .iter()
            .map(|s| (s.name.as_str(), s.total_ns))
            .collect();
        assert!(by_name.contains(&("ssd", 60)));
        assert!(by_name.contains(&("host", 40)));
    }

    #[test]
    fn attrs_round_trip() {
        let mut t = Tracer::new(TraceConfig::enabled());
        let tok = t.begin("read");
        t.attr(tok, "lba", 42u64);
        t.attr(tok, "error", "corrupt");
        t.attr(tok, "dedup_hit", false);
        t.end(tok);
        let s = &t.spans()[0];
        assert_eq!(s.attr("lba"), Some(&AttrValue::U64(42)));
        assert_eq!(s.attr("error"), Some(&AttrValue::Str("corrupt")));
        assert_eq!(s.attr("dedup_hit"), Some(&AttrValue::Bool(false)));
        assert_eq!(s.attr("missing"), None);
    }

    #[test]
    fn token_depth_conversion_is_checked() {
        assert_eq!(SpanToken::from_depth(0), Some(SpanToken { idx: 0 }));
        assert_eq!(
            SpanToken::from_depth(u32::MAX as usize - 1),
            Some(SpanToken { idx: u32::MAX - 1 })
        );
        // Exactly u32::MAX would alias the NONE sentinel; beyond it does
        // not fit. Both must be rejected, never truncated.
        assert_eq!(SpanToken::from_depth(u32::MAX as usize), None);
        assert_eq!(SpanToken::from_depth(u32::MAX as usize + 1), None);
        assert_eq!(SpanToken::from_depth(usize::MAX), None);
    }
}
