//! Chrome-trace-event (Perfetto-loadable) JSON export and validation.
//!
//! The exporter emits the "JSON object format" of the Trace Event spec:
//! one complete (`"ph": "X"`) event per span, timestamps in microseconds
//! with sub-microsecond precision carried in the fraction. Both
//! <https://ui.perfetto.dev> and `chrome://tracing` open the file directly.
//!
//! Formatting is fully deterministic — fixed key order, fixed number
//! formatting, no wall-clock or map-iteration input — so a seeded run
//! exports a byte-identical file every time.

use crate::json::{parse, Json};
use crate::span::{AttrValue, SpanRecord};

/// Schema tag written into the file's `otherData`.
pub const SPANS_SCHEMA: &str = "fidr.spans.v1";

/// Modelled ns → trace-event microseconds with the remainder as a fixed
/// three-digit fraction (`1234567` → `"1234.567"`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_attr_value(value: &AttrValue, out: &mut String) {
    match value {
        AttrValue::U64(v) => out.push_str(&v.to_string()),
        AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        AttrValue::Str(v) => {
            out.push('"');
            escape(v, out);
            out.push('"');
        }
        AttrValue::F64(v) => {
            if v.is_finite() {
                if *v == v.trunc() && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

/// Renders spans as a Chrome-trace-event JSON document (one event per
/// line inside `traceEvents`).
///
/// # Examples
///
/// ```
/// use fidr_trace::{chrome_trace_json, validate_chrome_trace, TraceConfig, Tracer};
///
/// let mut t = Tracer::new(TraceConfig::enabled());
/// let op = t.begin("write");
/// t.advance(1_500);
/// t.end(op);
/// let json = chrome_trace_json(&t.spans());
/// assert_eq!(validate_chrome_trace(&json), Ok(1));
/// assert!(json.contains("\"ts\":0.000"));
/// assert!(json.contains("\"dur\":1.500"));
/// ```
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"schema\":\"");
    out.push_str(SPANS_SCHEMA);
    out.push_str("\"},\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape(span.name, &mut out);
        out.push_str("\",\"cat\":\"fidr\",\"ph\":\"X\",\"ts\":");
        out.push_str(&micros(span.start_ns));
        out.push_str(",\"dur\":");
        out.push_str(&micros(span.duration_ns()));
        out.push_str(",\"pid\":1,\"tid\":1,\"args\":{\"span\":");
        out.push_str(&span.id.to_string());
        if let Some(parent) = span.parent {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        for (key, value) in &span.attrs {
            out.push_str(",\"");
            escape(key, &mut out);
            out.push_str("\":");
            push_attr_value(value, &mut out);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Validates that `input` is well-formed JSON in the trace-event object
/// shape: a top-level object whose `traceEvents` member is an array of
/// events each carrying `name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`. Returns
/// the event count.
pub fn validate_chrome_trace(input: &str) -> Result<usize, String> {
    let doc = parse(input).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" member")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    for (i, event) in events.iter().enumerate() {
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            if event.get(key).is_none() {
                return Err(format!("event {i} missing \"{key}\""));
            }
        }
        match event.get("ph").and_then(Json::as_str) {
            Some("X") => {}
            other => return Err(format!("event {i} has phase {other:?}, expected \"X\"")),
        }
        let (ts, dur) = (
            event.get("ts").and_then(Json::as_num),
            event.get("dur").and_then(Json::as_num),
        );
        match (ts, dur) {
            (Some(ts), Some(dur)) if ts >= 0.0 && dur >= 0.0 => {}
            _ => return Err(format!("event {i} has non-numeric or negative ts/dur")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TraceConfig, Tracer};

    fn sample_spans() -> Vec<SpanRecord> {
        let mut t = Tracer::new(TraceConfig::enabled());
        let w = t.begin("write");
        t.attr(w, "lba", 9u64);
        t.attr(w, "dedup_hit", false);
        let c = t.begin("compress");
        t.attr(c, "compressed_bytes", 1312u64);
        t.attr(c, "encoding", "lzss");
        t.advance(327);
        t.end(c);
        t.end(w);
        t.spans()
    }

    #[test]
    fn export_validates_and_round_trips() {
        let json = chrome_trace_json(&sample_spans());
        assert_eq!(validate_chrome_trace(&json), Ok(2));
        let doc = parse(&json).expect("parse");
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("schema"))
                .and_then(Json::as_str),
            Some(SPANS_SCHEMA)
        );
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let compress = &events[0];
        assert_eq!(
            compress.get("name").and_then(Json::as_str),
            Some("compress")
        );
        let args = compress.get("args").unwrap();
        assert_eq!(
            args.get("compressed_bytes").and_then(Json::as_num),
            Some(1312.0)
        );
        assert_eq!(args.get("encoding").and_then(Json::as_str), Some("lzss"));
        assert_eq!(args.get("parent").and_then(Json::as_num), Some(1.0));
        let write = &events[1];
        assert_eq!(
            write.get("args").unwrap().get("dedup_hit"),
            Some(&Json::Bool(false))
        );
        // 327 ns = 0.327 us, carried in the fraction.
        assert_eq!(compress.get("dur").and_then(Json::as_num), Some(0.327));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&sample_spans());
        let b = chrome_trace_json(&sample_spans());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_span_list_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert_eq!(validate_chrome_trace(&json), Ok(0));
    }

    #[test]
    fn validator_rejects_wrong_shapes() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        let missing = "{\"traceEvents\":[{\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(missing)
            .unwrap_err()
            .contains("missing"));
        let bad_ph = "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome_trace(bad_ph).unwrap_err().contains("phase"));
    }
}
