//! # fidr-trace
//!
//! Per-request span tracing for the FIDR reproduction, stamped with
//! *modelled* time. Aggregate counters (`fidr-metrics`) say how much each
//! stage did; spans say where one 4-KB chunk's latency went — NIC buffer,
//! hash, table-cache lookup, HW-tree walk, table-SSD IO, compression, data
//! SSD — which is the paper's core argument (§4–§6).
//!
//! Three pieces, all zero-dependency:
//!
//! * [`Tracer`] — a modelled-ns clock, LIFO span stack and bounded span
//!   ring. A disabled tracer ([`TraceConfig::default`]) turns every call
//!   into an early-return, so the pipelines keep their instrumentation
//!   unconditionally. Because time only advances through
//!   [`Tracer::advance`], traces from seeded runs are byte-identical.
//! * [`chrome_trace_json`] / [`validate_chrome_trace`] — export to the
//!   Chrome-trace-event JSON shape that <https://ui.perfetto.dev> and
//!   `chrome://tracing` open directly, plus a shape validator used by
//!   `fidr spans` and CI.
//! * [`CriticalPathReport`] — per-op-class stage breakdown (share, p50/p99
//!   of per-stage self-time) and the longest op's serial chain, accumulated
//!   at span close so it sees every op even when the ring drops spans.
//!
//! # Examples
//!
//! ```
//! use fidr_trace::{TraceConfig, Tracer};
//!
//! let mut t = Tracer::new(TraceConfig::enabled());
//! let op = t.begin("write");
//! let ssd = t.begin("ssd");
//! t.advance(90_000); // modelled device time
//! t.end(ssd);
//! t.attr(op, "dedup_hit", false);
//! t.end(op);
//!
//! let report = t.critical_path();
//! let write = report.class("write").unwrap();
//! assert_eq!(write.ops, 1);
//! assert_eq!(write.stages[0].name, "ssd");
//! assert!(fidr_trace::validate_chrome_trace(&t.export_chrome_json()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod critical;
mod export;
mod json;
mod span;

pub use critical::{ClassBreakdown, CriticalPathReport, StageBreakdown};
pub use export::{chrome_trace_json, validate_chrome_trace, SPANS_SCHEMA};
pub use json::{parse as parse_json, Json, JsonError};
pub use span::{AttrValue, SpanRecord, SpanToken, TraceConfig, Tracer};
