//! Request latency models (paper §7.6).
//!
//! Writes commit at NIC-buffer insertion (battery-backed), so FIDR's write
//! latency equals a no-reduction system's. Reads differ: the baseline's
//! datapath bounces SSD → host memory → FPGA → host memory → NIC with the
//! host software mediating every hop, while FIDR goes SSD → Decompression
//! Engine → NIC peer-to-peer. The paper measures a server-side 4-KB read
//! (served within a batch) at 700 µs for the baseline and 490 µs for FIDR.

use fidr_ssd::SsdSpec;
use std::time::Duration;

/// One additive latency stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// What the stage is.
    pub name: &'static str,
    /// Its service time for a batched 4-KB read.
    pub time: Duration,
}

/// An additive pipeline latency model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Stages in datapath order.
    pub stages: Vec<Stage>,
}

/// Host-software mediation cost per hop the CPU must orchestrate while the
/// request waits in a batch: interrupt/completion handling, queueing behind
/// the batch, and DMA descriptor setup. Calibrated so that the baseline's
/// three host-mediated hops account for the 210 µs gap the paper measures
/// between the two systems (700 µs vs 490 µs).
const HOST_MEDIATION: Duration = Duration::from_micros(105);

/// LBA→PBA resolution and NVMe command submission.
const SUBMIT: Duration = Duration::from_micros(84);

/// Decompression service time for a 4-KB chunk within a batch.
const DECOMPRESS: Duration = Duration::from_micros(25);

/// Batch accumulation wait: a request sits in a batch of reads before its
/// turn (both systems batch identically).
const BATCH_WAIT: Duration = Duration::from_micros(280);

impl LatencyModel {
    /// Server-side read datapath of the baseline (Figure 2b): every hop
    /// transits host memory under CPU control.
    pub fn baseline_read(ssd: &SsdSpec) -> Self {
        let chunk = 4096;
        LatencyModel {
            stages: vec![
                Stage {
                    name: "batch wait",
                    time: BATCH_WAIT,
                },
                Stage {
                    name: "LBA->PBA lookup + NVMe submit",
                    time: SUBMIT,
                },
                Stage {
                    name: "data SSD random read",
                    time: ssd.read_time(chunk / 2),
                },
                Stage {
                    name: "SSD -> host memory -> FPGA (host mediated)",
                    time: HOST_MEDIATION,
                },
                Stage {
                    name: "FPGA decompression",
                    time: DECOMPRESS,
                },
                Stage {
                    name: "FPGA -> host memory -> NIC (host mediated)",
                    time: HOST_MEDIATION,
                },
            ],
        }
    }

    /// Server-side read datapath of FIDR (Figure 6b): one host touch to
    /// resolve the PBA and post the command, then P2P all the way.
    pub fn fidr_read(ssd: &SsdSpec) -> Self {
        let chunk = 4096;
        LatencyModel {
            stages: vec![
                Stage {
                    name: "batch wait",
                    time: BATCH_WAIT,
                },
                Stage {
                    name: "LBA->PBA lookup + NVMe submit",
                    time: SUBMIT,
                },
                Stage {
                    name: "data SSD random read",
                    time: ssd.read_time(chunk / 2),
                },
                Stage {
                    name: "SSD -> decompression engine (P2P)",
                    time: Duration::from_micros(5),
                },
                Stage {
                    name: "FPGA decompression",
                    time: DECOMPRESS,
                },
                Stage {
                    name: "engine -> NIC (P2P)",
                    time: Duration::from_micros(5),
                },
            ],
        }
    }

    /// Write commit latency: both systems acknowledge at the (battery-
    /// backed) buffer, so the backend adds nothing (§7.6.1).
    pub fn write_commit() -> Self {
        LatencyModel {
            stages: vec![Stage {
                name: "NIC buffer insert + ack",
                time: Duration::from_micros(10),
            }],
        }
    }

    /// Total end-to-end latency.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.time).sum()
    }

    /// Converts the service stages into a discrete-event pipeline for
    /// cross-checking the closed forms under load. The batch-wait stage
    /// is dropped — the simulator's arrival process replaces it.
    pub fn to_pipeline(&self) -> fidr_hwsim::des::PipelineSim {
        let stations = self
            .stages
            .iter()
            .filter(|s| s.name != "batch wait")
            .map(|s| fidr_hwsim::des::Station::new(s.name, s.time))
            .collect();
        fidr_hwsim::des::PipelineSim::new(stations)
    }

    /// Total latency when the datapath runs at `utilization` of its
    /// capacity (0.0 = idle, →1.0 = saturated). Each stage is treated as
    /// an M/D/1 server: expected wait = ρ/(2(1−ρ)) of its service time,
    /// so the idle total matches [`total`](LatencyModel::total) and the
    /// curve diverges toward saturation — the usual reason measured
    /// "line-rate" latencies exceed back-of-envelope sums.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= utilization < 1.0`.
    pub fn total_under_load(&self, utilization: f64) -> Duration {
        assert!(
            (0.0..1.0).contains(&utilization),
            "utilization must be in [0, 1)"
        );
        let queueing = 1.0 + utilization / (2.0 * (1.0 - utilization));
        self.stages
            .iter()
            .map(|s| Duration::from_secs_f64(s.time.as_secs_f64() * queueing))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latencies_match_paper_shape() {
        let ssd = SsdSpec::default();
        let baseline = LatencyModel::baseline_read(&ssd).total();
        let fidr = LatencyModel::fidr_read(&ssd).total();
        // Paper: 700 µs → 490 µs (a ~30 % cut).
        assert!(
            baseline > fidr,
            "FIDR must be faster: {baseline:?} vs {fidr:?}"
        );
        let cut = 1.0 - fidr.as_secs_f64() / baseline.as_secs_f64();
        assert!(
            (0.15..0.45).contains(&cut),
            "latency cut {cut:.2} out of the paper's range"
        );
        assert!(baseline > Duration::from_micros(500));
        assert!(baseline < Duration::from_micros(900));
    }

    #[test]
    fn latency_under_load_is_monotone_and_anchored() {
        let ssd = SsdSpec::default();
        let m = LatencyModel::fidr_read(&ssd);
        assert_eq!(m.total_under_load(0.0), m.total());
        let mut prev = m.total_under_load(0.0);
        for rho in [0.2, 0.5, 0.8, 0.95] {
            let t = m.total_under_load(rho);
            assert!(t > prev, "latency must grow with load ({rho})");
            prev = t;
        }
        // Near saturation the queueing term dominates.
        assert!(m.total_under_load(0.95).as_secs_f64() > m.total().as_secs_f64() * 5.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn saturated_load_panics() {
        LatencyModel::write_commit().total_under_load(1.0);
    }

    #[test]
    fn write_commit_is_buffer_speed() {
        assert!(LatencyModel::write_commit().total() < Duration::from_micros(50));
    }

    #[test]
    fn totals_sum_stages() {
        let m = LatencyModel {
            stages: vec![
                Stage {
                    name: "a",
                    time: Duration::from_micros(10),
                },
                Stage {
                    name: "b",
                    time: Duration::from_micros(15),
                },
            ],
        };
        assert_eq!(m.total(), Duration::from_micros(25));
    }
}
