//! The end-to-end FIDR system (paper Figure 6).
//!
//! Write flow (steps 1–10): the NIC buffers the request in battery-backed
//! NIC DRAM and acks immediately; in-NIC SHA cores hash buffered batches;
//! only the hash values go to the host; the device manager drives the
//! Cache HW-Engine (or the software cache, in staged variants) to locate
//! buckets; the host scans cache content for duplicate status; the NIC's
//! compression scheduler ships *unique chunks only* peer-to-peer to the
//! Compression Engine; sealed containers move Compression Engine → data
//! SSD peer-to-peer; the host updates metadata. Client data never touches
//! host DRAM.
//!
//! Read flow (steps 1–8): the NIC serves buffered writes directly;
//! otherwise the host resolves LBA→PBA and orchestrates data SSD →
//! Decompression Engine → NIC transfers, again bypassing host memory.

use crate::backend::{CacheBackend, CacheMode};
use crate::hotcache::{HotCacheStats, HotReadCache};
use bytes::Bytes;
use fidr_cache::{
    CacheStats, HwTree, HwTreeStats, ScrubResult, ShardedTableCache, Temperature, TieredPolicy,
    TieredPolicyConfig,
};
use fidr_chunk::{Lba, Pba, Pbn};
use fidr_compress::{CompressedChunk, Encoding};
use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
use fidr_hash::Fingerprint;
use fidr_hwsim::{ops, CostParams, CpuTask, Ledger, MemPath, PcieLink, TimeModel};
use fidr_metrics::{Histogram, MetricsSnapshot};
use fidr_nic::{FidrNic, HashedChunk, NicStats};
use fidr_pool::{PoolStats, WorkerPool};
use fidr_ssd::{DataSsdArray, QueueLocation, TableSsd};
use fidr_tables::{
    BucketInsertError, ContainerBuilder, ContainerLiveness, GcReport, LbaPbaTable, PbnLocation,
    ReductionStats, BUCKET_BYTES,
};
use fidr_trace::{SpanToken, TraceConfig, Tracer};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

/// Configuration of a FIDR instance.
#[derive(Debug, Clone)]
pub struct FidrConfig {
    /// Host-DRAM table-cache capacity in 4-KB lines.
    pub cache_lines: usize,
    /// Buckets in the Hash-PBN table on the table SSDs.
    pub table_buckets: u64,
    /// Container flush threshold in bytes (4 MB in §5.3).
    pub container_threshold: usize,
    /// NIC buffer DRAM in bytes.
    pub nic_buffer_bytes: u64,
    /// Chunks the NIC accumulates before hashing a batch.
    pub hash_batch: usize,
    /// Parallel in-NIC SHA cores used per batch (§6.2 instantiates
    /// several to sustain line rate; functional results are identical).
    pub hash_engines: usize,
    /// Table-cache drive mode (software vs HW-Engine; Figure 14 stages).
    pub cache_mode: CacheMode,
    /// Modelled HW-tree pipeline depth (None derives it from
    /// `cache_lines`; experiments set the PB-scale 14).
    pub hwtree_levels: Option<usize>,
    /// Hot-block read cache capacity in chunks (0 = off) — the §8
    /// extension for skewed read access.
    pub hot_read_cache_chunks: usize,
    /// Offload the data-SSD NVMe stack for reads to the FPGA as well —
    /// the §7.5 future-work item (removes the residual read-path CPU).
    pub read_stack_offload: bool,
    /// Data SSDs in the array.
    pub data_ssds: u32,
    /// Calibrated per-operation costs.
    pub cost: CostParams,
    /// Seeded fault schedule for the device models (inert by default).
    pub faults: FaultPlan,
    /// Bounded-retry policy for device faults and checksum re-reads.
    pub retry: RetryPolicy,
    /// Span tracing (off by default; see `docs/OBSERVABILITY.md`).
    pub trace: TraceConfig,
    /// Host worker threads for the per-socket batch pipeline (hashing,
    /// dedup lookup, compression). Results merge in batch order, so the
    /// modelled metrics are byte-identical for any worker count.
    pub workers: usize,
    /// Independent hash-prefix shards of the table cache. Each shard has
    /// its own index engine; 1 reproduces the unsharded cache exactly.
    pub cache_shards: usize,
    /// Temperature-tiered dedup (HPDedup/CARAM hybrid): classify streams
    /// hot/cold by temporal locality, keep cold-stream fingerprints out
    /// of the DRAM tier, and dedup their writes later via the background
    /// scrubber. `None` (the default) is the flat, always-inline cache.
    pub tiered: Option<TieredDedupConfig>,
}

/// Default for the `lba >> stream_shift` stream-id keying, shared by
/// [`TieredDedupConfig`] and the server telemetry rollups so the tiered
/// admission policy and `fidr top` can never silently disagree on what
/// a stream (tenant) is. 22 bits of 4-KiB blocks = 16 GiB per stream.
pub const DEFAULT_STREAM_SHIFT: u32 = 22;

/// Tunables for the hybrid prioritized dedup path
/// ([`FidrConfig::tiered`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredDedupConfig {
    /// Per-stream locality classifier settings.
    pub policy: TieredPolicyConfig,
    /// Stream id = `lba >> stream_shift`: writes are attributed to
    /// coarse LBA regions, matching how the multi-stream workload
    /// generator partitions its address space.
    pub stream_shift: u32,
    /// Deferred writes accumulated before an opportunistic scrub pass
    /// runs at the end of a batch (a flush always scrubs everything).
    pub scrub_batch: usize,
}

impl Default for TieredDedupConfig {
    fn default() -> Self {
        TieredDedupConfig {
            policy: TieredPolicyConfig::default(),
            stream_shift: DEFAULT_STREAM_SHIFT,
            scrub_batch: 512,
        }
    }
}

impl Default for FidrConfig {
    fn default() -> Self {
        FidrConfig {
            cache_lines: 4096,
            table_buckets: 1 << 17,
            container_threshold: 4 << 20,
            nic_buffer_bytes: 1 << 30,
            hash_batch: 64,
            hash_engines: 1,
            cache_mode: CacheMode::HwEngine { update_slots: 4 },
            hwtree_levels: None,
            hot_read_cache_chunks: 0,
            read_stack_offload: false,
            data_ssds: 2,
            cost: CostParams::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            trace: TraceConfig::default(),
            workers: 1,
            cache_shards: 1,
            tiered: None,
        }
    }
}

/// One write committed without an inline table lookup, awaiting the
/// dedup scrubber.
#[derive(Debug, Clone, Copy)]
struct DeferredWrite {
    lba: Lba,
    fp: Fingerprint,
    /// The PBN the chunk was stored under; retired if the scrub finds a
    /// canonical copy.
    pbn: Pbn,
    /// Hash-PBN bucket of `fp` (scrubs batch by bucket).
    bucket: u64,
    /// Deferral order, for deterministic re-queueing after an IO error.
    seq: u64,
}

/// Counters of the tiered/deferred path, exported (when active) as
/// `cache.tier.*` / `dedup.deferred.*` / `scrub.*`.
#[derive(Debug, Default, Clone, Copy)]
struct TierStats {
    deferred_total: u64,
    cold_resident: u64,
    cold_fetches: u64,
    cold_writebacks: u64,
    scrub_runs: u64,
    scrub_processed: u64,
    scrub_dups: u64,
    scrub_inserts: u64,
    scrub_stale: u64,
    scrub_table_full: u64,
}

/// Live state of the hybrid prioritized dedup path.
#[derive(Debug)]
struct TieredState {
    policy: TieredPolicy,
    stream_shift: u32,
    scrub_batch: usize,
    /// FIFO of cold-stream writes awaiting offline dedup, in seq order.
    deferred: VecDeque<DeferredWrite>,
    next_seq: u64,
    stats: TierStats,
}

impl TieredState {
    fn new(cfg: &TieredDedupConfig) -> Self {
        TieredState {
            policy: TieredPolicy::new(cfg.policy),
            stream_shift: cfg.stream_shift,
            scrub_batch: cfg.scrub_batch.max(1),
            deferred: VecDeque::new(),
            next_seq: 0,
            stats: TierStats::default(),
        }
    }
}

/// Errors surfaced by the FIDR system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FidrError {
    /// A write chunk was not exactly 4 KB.
    BadChunkSize(usize),
    /// The Hash-PBN bucket for this fingerprint is full.
    TableFull,
    /// Read of an address that was never written.
    NotMapped(Lba),
    /// The NIC buffer is out of battery-backed capacity.
    NicBufferFull,
    /// The data SSDs returned an unreadable region.
    Corrupt(String),
    /// A device IO failed even after the bounded retry budget.
    Io(String),
}

impl FidrError {
    /// Stable metric-name slug for per-error-kind counters.
    pub fn kind(&self) -> &'static str {
        match self {
            FidrError::BadChunkSize(_) => "bad_chunk_size",
            FidrError::TableFull => "table_full",
            FidrError::NotMapped(_) => "not_mapped",
            FidrError::NicBufferFull => "nic_buffer_full",
            FidrError::Corrupt(_) => "corrupt",
            FidrError::Io(_) => "io",
        }
    }
}

impl fmt::Display for FidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FidrError::BadChunkSize(n) => write!(f, "chunk of {n} bytes; expected 4096"),
            FidrError::TableFull => write!(f, "hash-PBN bucket full; grow the table"),
            FidrError::NotMapped(lba) => write!(f, "read of unmapped {lba}"),
            FidrError::NicBufferFull => write!(f, "NIC buffer exhausted; backend too slow"),
            FidrError::Corrupt(e) => write!(f, "data SSD corruption: {e}"),
            FidrError::Io(e) => write!(f, "device IO failed past retry budget: {e}"),
        }
    }
}

impl std::error::Error for FidrError {}

/// The FIDR data-reduction server.
///
/// # Examples
///
/// ```
/// use fidr_core::{FidrConfig, FidrSystem};
/// use fidr_chunk::Lba;
/// use bytes::Bytes;
///
/// let mut sys = FidrSystem::new(FidrConfig::default());
/// let data = Bytes::from(vec![42u8; 4096]);
/// sys.write(Lba(0), data.clone())?;
/// assert_eq!(sys.read(Lba(0))?, data.to_vec());
/// # Ok::<(), fidr_core::FidrError>(())
/// ```
#[derive(Debug)]
pub struct FidrSystem {
    cfg: FidrConfig,
    nic: FidrNic,
    cache: CacheBackend,
    table_ssd: TableSsd,
    data_ssd: DataSsdArray,
    lba_map: LbaPbaTable,
    builder: ContainerBuilder,
    /// Raw chunk data of the still-open container, resident in the
    /// Compression Engine's DRAM until the container seals.
    staging: HashMap<u32, Vec<u8>>,
    next_pbn: u64,
    next_container: u64,
    /// Fingerprint of each live unique chunk (needed to delete its
    /// Hash-PBN entry when the chunk dies).
    pbn_fp: HashMap<Pbn, Fingerprint>,
    /// PBNs ever appended to each container (filtered by refcount at
    /// compaction time).
    container_pbns: HashMap<u64, Vec<Pbn>>,
    liveness: ContainerLiveness,
    /// PBNs whose reference count dropped to zero, awaiting collection.
    dead: Vec<Pbn>,
    hot_cache: HotReadCache,
    ledger: Ledger,
    stats: ReductionStats,
    /// Wall-clock time per Compression-Engine chunk compression.
    compress_ns: Histogram,
    /// Compressed size as a percentage of the original (0–100).
    compress_pct: Histogram,
    /// Chunks that compressed via LZSS.
    compress_lzss_chunks: u64,
    /// Chunks stored raw because compression did not help.
    compress_raw_chunks: u64,
    /// End-to-end wall-clock time per client write (all outcomes).
    write_ns: Histogram,
    /// End-to-end wall-clock time per client read (all outcomes).
    read_ns: Histogram,
    /// End-to-end wall-clock time per client delete (all outcomes).
    delete_ns: Histogram,
    /// Client deletes acknowledged (the LBA was mapped; it no longer is).
    deletes_acked: u64,
    /// Garbage-collection passes run over this system's lifetime.
    gc_runs: u64,
    /// Cumulative outcome of every collection pass (for `gc.*` metrics).
    gc_total: GcReport,
    /// Shared fault injector armed into every device model.
    faults: FaultInjector,
    /// Cache counters carried over from a retired (degraded) HW backend.
    carry_cache_stats: CacheStats,
    /// The HW-Engine cache retired by graceful degradation — kept so its
    /// engine counters stay reportable; it no longer serves accesses.
    retired_hw: Option<ShardedTableCache<HwTree>>,
    /// Client-write failures by [`FidrError::kind`].
    write_errors: HashMap<&'static str, u64>,
    /// Client-read failures by [`FidrError::kind`].
    read_errors: HashMap<&'static str, u64>,
    /// Client-delete failures by [`FidrError::kind`].
    delete_errors: HashMap<&'static str, u64>,
    /// Backlog-drain rounds forced by NIC buffer pressure.
    nic_drain_rounds: u64,
    /// Modelled (not slept) backoff spent on system-level recovery:
    /// waiting out NIC pressure and re-reading mismatched chunks.
    recovery_backoff_ns: Histogram,
    /// Checksum mismatches detected on the read path.
    read_repair_detected: u64,
    /// Re-reads issued to heal checksum mismatches.
    read_repair_rereads: u64,
    /// Mismatches healed by a re-read.
    read_repair_repaired: u64,
    /// Mismatches that persisted past the retry budget.
    read_repair_unrecovered: u64,
    /// Container seals that failed past the device retry budget.
    seal_failures: u64,
    /// Span tracer stamped with modelled time (no-op unless configured).
    tracer: Tracer,
    /// Modelled service times backing the tracer's clock.
    time: TimeModel,
    /// Persistent worker pool for the batch pipeline (present only when
    /// `cfg.workers > 1` with an inert fault plan). Long-lived threads
    /// with thread-per-shard-group affinity replace the per-batch
    /// scoped-thread spawns of earlier revisions; see `fidr-pool`.
    pool: Option<WorkerPool>,
    /// Hybrid prioritized dedup state (None = flat, always-inline cache).
    tiered: Option<TieredState>,
}

/// Ledger positions captured before a cache access, used to split the
/// access into `table_ssd` / `hwtree` / host time afterwards.
#[derive(Debug, Clone, Copy)]
struct CacheMarks {
    host_ns: u64,
    table_bytes: u64,
    hw_cycles: u64,
}

impl FidrSystem {
    /// Builds a FIDR server from `cfg`.
    pub fn new(cfg: FidrConfig) -> Self {
        let queue_location = match cfg.cache_mode {
            CacheMode::Software => QueueLocation::HostMemory,
            CacheMode::HwEngine { .. } => QueueLocation::CacheEngine,
        };
        let faults = FaultInjector::new(cfg.faults);
        let mut nic = FidrNic::new(cfg.nic_buffer_bytes);
        nic.set_fault_injector(faults.clone());
        let mut table_ssd = TableSsd::new(cfg.table_buckets, queue_location);
        table_ssd.set_fault_injector(faults.clone(), cfg.retry);
        let mut data_ssd = DataSsdArray::new(cfg.data_ssds);
        data_ssd.set_fault_injector(faults.clone(), cfg.retry);
        // Spin up the persistent worker pool once, here, rather than
        // spawning threads per batch. An armed fault plan forces the
        // serial path (deterministic fault replay), so no pool is built.
        let pool = if cfg.workers > 1 && cfg.faults.is_inert() {
            Some(WorkerPool::new(cfg.workers))
        } else {
            None
        };
        FidrSystem {
            nic,
            cache: CacheBackend::new(
                cfg.cache_mode,
                cfg.cache_lines,
                cfg.hwtree_levels,
                cfg.cache_shards.max(1),
            ),
            table_ssd,
            data_ssd,
            lba_map: LbaPbaTable::new(),
            builder: ContainerBuilder::new(0, cfg.container_threshold),
            staging: HashMap::new(),
            next_pbn: 0,
            next_container: 0,
            pbn_fp: HashMap::new(),
            container_pbns: HashMap::new(),
            liveness: ContainerLiveness::new(),
            dead: Vec::new(),
            hot_cache: HotReadCache::new(cfg.hot_read_cache_chunks),
            ledger: Ledger::new(),
            stats: ReductionStats::default(),
            compress_ns: Histogram::new(),
            compress_pct: Histogram::new(),
            compress_lzss_chunks: 0,
            compress_raw_chunks: 0,
            write_ns: Histogram::new(),
            read_ns: Histogram::new(),
            delete_ns: Histogram::new(),
            deletes_acked: 0,
            gc_runs: 0,
            gc_total: GcReport::default(),
            faults,
            carry_cache_stats: CacheStats::default(),
            retired_hw: None,
            write_errors: HashMap::new(),
            read_errors: HashMap::new(),
            delete_errors: HashMap::new(),
            nic_drain_rounds: 0,
            recovery_backoff_ns: Histogram::new(),
            read_repair_detected: 0,
            read_repair_rereads: 0,
            read_repair_repaired: 0,
            read_repair_unrecovered: 0,
            seal_failures: 0,
            tracer: Tracer::new(cfg.trace),
            time: TimeModel::default(),
            pool,
            tiered: cfg.tiered.as_ref().map(TieredState::new),
            cfg,
        }
    }

    /// The span tracer: export with [`Tracer::export_chrome_json`], read
    /// the breakdown with [`Tracer::critical_path`]. A no-op unless
    /// [`FidrConfig::trace`] enabled it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Advances the tracer by the host time accrued since `mark`; returns
    /// the new mark. Call only when tracing is enabled.
    fn advance_host(&mut self, mark: u64) -> u64 {
        let now = self.time.host_ns(&self.ledger);
        self.tracer.advance(now.saturating_sub(mark));
        now
    }

    fn cache_marks(&self) -> CacheMarks {
        CacheMarks {
            host_ns: self.time.host_ns(&self.ledger),
            table_bytes: self.ledger.table_ssd_read_bytes + self.ledger.table_ssd_write_bytes,
            hw_cycles: self.cache.hwtree_stats().map_or(0, |s| s.cycles),
        }
    }

    /// Closes a `cache` span: emits `table_ssd` / `hwtree` child spans
    /// sized by the ledger deltas since `marks`, then charges the residual
    /// host time to the cache span itself.
    fn finish_cache_span(&mut self, span: SpanToken, marks: CacheMarks) {
        if !self.tracer.is_enabled() {
            self.tracer.end(span);
            return;
        }
        let table_bytes = (self.ledger.table_ssd_read_bytes + self.ledger.table_ssd_write_bytes)
            .saturating_sub(marks.table_bytes);
        if table_bytes > 0 {
            let ios = table_bytes.div_ceil(BUCKET_BYTES as u64);
            let t = self.tracer.begin("table_ssd");
            self.tracer.attr(t, "bytes", table_bytes);
            self.tracer.attr(t, "ios", ios);
            self.tracer
                .advance(self.time.table_ssd_ns(table_bytes, ios));
            self.tracer.end(t);
        }
        // saturating: a mid-access HW-engine degradation retires the stats.
        let hw_cycles = self
            .cache
            .hwtree_stats()
            .map_or(0, |s| s.cycles)
            .saturating_sub(marks.hw_cycles);
        if hw_cycles > 0 {
            let t = self.tracer.begin("hwtree");
            self.tracer.attr(t, "cycles", hw_cycles);
            self.tracer.advance(self.time.hwtree_ns(hw_cycles));
            self.tracer.end(t);
        }
        self.advance_host(marks.host_ns);
        self.tracer.end(span);
    }

    /// Resource ledger accumulated so far.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Data-reduction outcomes so far.
    pub fn stats(&self) -> ReductionStats {
        self.stats
    }

    /// Table-cache counters. After a HW-Engine degradation these cover
    /// both the retired HW backend and its software replacement.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        stats.merge(self.carry_cache_stats);
        stats
    }

    /// Cache HW-Engine counters (None if the engine never ran). A
    /// degraded engine still reports the counters it accumulated.
    pub fn hwtree_stats(&self) -> Option<HwTreeStats> {
        self.cache
            .hwtree_stats()
            .or_else(|| self.retired_hw.as_ref().map(|c| c.hwtree_stats()))
    }

    /// True once an injected Cache HW-Engine failure forced the fallback
    /// to the software table cache.
    pub fn hw_engine_degraded(&self) -> bool {
        self.retired_hw.is_some()
    }

    /// The Cache HW-Engine's client-throughput ceiling (bytes/s) for this
    /// run — client bytes served over the engine's busy time — folded into
    /// the §7.5 projection (None in software cache mode).
    pub fn hwtree_throughput(&self, fpga_dram_bw: f64) -> Option<f64> {
        let elapsed = self
            .cache
            .hwtree_elapsed_seconds(fpga_dram_bw)
            .or_else(|| {
                self.retired_hw
                    .as_ref()
                    .map(|c| c.hwtree_elapsed_seconds(fpga_dram_bw))
            })?;
        if elapsed <= 0.0 {
            return None;
        }
        Some(self.ledger.client_bytes() as f64 / elapsed)
    }

    /// NIC counters.
    pub fn nic_stats(&self) -> NicStats {
        self.nic.stats()
    }

    /// Bytes stored on the data SSDs so far (sealed containers).
    pub fn stored_bytes(&self) -> u64 {
        self.data_ssd.stored_bytes()
    }

    /// Accepts one 4-KB client write (Figure 6a step 1). The NIC buffers
    /// and acks; the backend batch is processed once `hash_batch` chunks
    /// accumulate.
    ///
    /// # Errors
    ///
    /// [`FidrError::BadChunkSize`], [`FidrError::NicBufferFull`], or a
    /// propagated backend error once a batch processes.
    pub fn write(&mut self, lba: Lba, data: Bytes) -> Result<(), FidrError> {
        let started = Instant::now();
        let op = self.tracer.begin("write");
        self.tracer.attr(op, "lba", lba.0);
        let out = self.write_inner(lba, data);
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        self.write_ns.record_duration(started.elapsed());
        if let Err(e) = &out {
            *self.write_errors.entry(e.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Accepts a batch of 4-KB client writes. Functionally identical to
    /// calling [`write`](FidrSystem::write) per chunk — the NIC still
    /// drains a pipeline batch every `hash_batch` chunks — but this is
    /// the natural entry point for the multi-worker per-socket pipeline
    /// ([`FidrConfig::workers`]): each drained batch fans hashing, dedup
    /// lookup and compression out across the worker pool.
    ///
    /// # Errors
    ///
    /// Stops at the first failing write and returns its error.
    pub fn write_batch(
        &mut self,
        writes: impl IntoIterator<Item = (Lba, Bytes)>,
    ) -> Result<(), FidrError> {
        for (lba, data) in writes {
            self.write(lba, data)?;
        }
        Ok(())
    }

    fn write_inner(&mut self, lba: Lba, data: Bytes) -> Result<(), FidrError> {
        if data.len() != BUCKET_BYTES {
            return Err(FidrError::BadChunkSize(data.len()));
        }
        let len = data.len() as u64;
        // Admission span: buffering plus any backlog drains or pressure
        // backoff the NIC forces before accepting. (A drain runs whole
        // batches, so `hash`/`cache`/... spans may nest under `nic` here.)
        let nic_span = self.tracer.begin("nic");
        let mut pressure_waits = 0u32;
        while !self.nic.has_room(len) {
            let before = self.nic.pending_len();
            if before > 0 {
                // Drain the backlog, then retry the admission check —
                // repeatedly, since one batch may not free enough room.
                self.nic_drain_rounds += 1;
                self.process_batch()?;
                if self.nic.pending_len() >= before && !self.nic.has_room(len) {
                    // No forward progress: the backlog is stuck.
                    return Err(FidrError::NicBufferFull);
                }
            } else {
                // Nothing left to drain, so the pressure is transient
                // (injected): wait it out with modelled backoff, bounded
                // by the retry budget.
                if pressure_waits >= self.cfg.retry.max_retries {
                    return Err(FidrError::NicBufferFull);
                }
                let backoff = self.cfg.retry.backoff(pressure_waits);
                self.recovery_backoff_ns.record_duration(backoff);
                self.tracer
                    .advance(backoff.as_nanos().min(u64::MAX as u128) as u64);
                pressure_waits += 1;
            }
        }
        self.ledger.add_client_write_bytes(len);
        self.stats.write_chunks += 1;
        self.stats.raw_bytes += len;
        self.ledger.nic_dram_bytes += len;

        // Step 1: in-NIC buffering; write completion acks immediately.
        self.nic.accept_write(lba, data);
        if self.tracer.is_enabled() {
            self.tracer.advance(self.time.nic_ns(len));
            if pressure_waits > 0 {
                self.tracer
                    .attr(nic_span, "retries", u64::from(pressure_waits));
            }
        }
        self.tracer.end(nic_span);

        if self.nic.pending_len() >= self.cfg.hash_batch {
            self.process_batch()?;
        }
        Ok(())
    }

    /// Splits a multi-chunk client write into 4-KB chunks (the chunking
    /// component, §2.1.1) and writes each; returns the chunk count.
    ///
    /// # Errors
    ///
    /// [`FidrError::BadChunkSize`] if the request is empty or ragged,
    /// plus anything [`write`](FidrSystem::write) returns.
    pub fn write_request(&mut self, start: Lba, data: Bytes) -> Result<usize, FidrError> {
        let len = data.len();
        let chunks = fidr_chunk::FixedChunker::default()
            .split(start, data)
            .map_err(|_| FidrError::BadChunkSize(len))?;
        let n = chunks.len();
        for chunk in chunks {
            self.write(chunk.lba, chunk.data)?;
        }
        Ok(n)
    }

    /// Deletes one 4-KB client block: unmaps the LBA, releases its
    /// reference on the shared chunk, and — when that was the last
    /// reference — queues the chunk for the next
    /// [`collect_garbage`](FidrSystem::collect_garbage) pass. The chunk's
    /// bytes stay readable through other LBAs that still reference it.
    ///
    /// # Errors
    ///
    /// [`FidrError::NotMapped`] if the LBA holds no current mapping, or a
    /// propagated backend error if draining a NIC-buffered write of the
    /// same LBA fails.
    pub fn delete(&mut self, lba: Lba) -> Result<(), FidrError> {
        let started = Instant::now();
        let op = self.tracer.begin("delete");
        self.tracer.attr(op, "lba", lba.0);
        let out = self.delete_inner(lba);
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        self.delete_ns.record_duration(started.elapsed());
        if let Err(e) = &out {
            *self.delete_errors.entry(e.kind()).or_insert(0) += 1;
        }
        out
    }

    fn delete_inner(&mut self, lba: Lba) -> Result<(), FidrError> {
        // A delete must order behind any acked-but-unprocessed write of
        // the same LBA sitting in the NIC buffer: drain the backlog so
        // the mapping exists before we tear it down. (Deferred cold-tier
        // writes need no special handling — unmapping drops the
        // provisional PBN's refcount to zero, which the scrubber's stale
        // filter already discards.)
        if self.nic.lookup_read(lba).is_some() {
            while self.nic.pending_len() > 0 {
                self.process_batch()?;
            }
        }
        let cost = self.cfg.cost;
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
        self.hot_cache.invalidate(lba);
        let pbn = self.lba_map.unmap(lba).ok_or(FidrError::NotMapped(lba))?;
        if self.lba_map.refcount(pbn) == 0 {
            if let Some(loc) = self.lba_map.location(pbn) {
                self.liveness.record_dead(loc.container);
            }
            self.dead.push(pbn);
        }
        self.deletes_acked += 1;
        Ok(())
    }

    /// Reads `chunks` consecutive blocks starting at `start` and returns
    /// their concatenated contents.
    ///
    /// # Errors
    ///
    /// Anything [`read`](FidrSystem::read) returns for any block.
    pub fn read_range(&mut self, start: Lba, chunks: usize) -> Result<Vec<u8>, FidrError> {
        let mut out = Vec::with_capacity(chunks * BUCKET_BYTES);
        for i in 0..chunks as u64 {
            out.extend(self.read(Lba(start.0 + i))?);
        }
        Ok(out)
    }

    /// Serves one 4-KB client read (Figure 6b).
    ///
    /// # Errors
    ///
    /// [`FidrError::NotMapped`] for never-written addresses and
    /// [`FidrError::Corrupt`] if the SSD region fails to decode.
    pub fn read(&mut self, lba: Lba) -> Result<Vec<u8>, FidrError> {
        let started = Instant::now();
        let op = self.tracer.begin("read");
        self.tracer.attr(op, "lba", lba.0);
        let out = self.read_inner(lba, op);
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        self.read_ns.record_duration(started.elapsed());
        if let Err(e) = &out {
            *self.read_errors.entry(e.kind()).or_insert(0) += 1;
        }
        out
    }

    fn read_inner(&mut self, lba: Lba, op: SpanToken) -> Result<Vec<u8>, FidrError> {
        let traced = self.tracer.is_enabled();
        let cost = self.cfg.cost;
        self.ledger.add_client_read_bytes(BUCKET_BYTES as u64);
        self.stats.read_chunks += 1;

        // Step 2: the LBA-lookup module checks the in-NIC write buffer.
        if let Some(data) = self.nic.lookup_read(lba) {
            let data = data.to_vec();
            let span = self.tracer.begin("nic");
            if traced {
                self.tracer.attr(op, "nic_buffer_hit", true);
                self.tracer.advance(self.time.nic_ns(data.len() as u64));
            }
            self.tracer.end(span);
            return Ok(data);
        }

        let mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };

        // Step 3–4: host resolves LBA → PBA.
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);

        // §8 extension: frequently read blocks served from host DRAM.
        if let Some(hot) = self.hot_cache.get(lba) {
            let data = hot.to_vec();
            ops::dma_from_host(
                &mut self.ledger,
                PcieLink::NicHost,
                MemPath::DataSsdStaging,
                data.len() as u64,
            );
            if traced {
                self.tracer.attr(op, "hotcache_hit", true);
                self.advance_host(mark);
            }
            return Ok(data);
        }

        let pba = self.lba_map.lookup(lba).ok_or(FidrError::NotMapped(lba))?;

        let pbn = self.lba_map.pbn_of(lba);
        let io_bytes = pba.compressed_len as u64 + 4;

        // Device fetch (with checksum-verified re-reads on mismatch).
        let rereads_before = self.read_repair_rereads;
        let ssd_span = self.tracer.begin("ssd");
        let fetched = self.fetch_chunk_verified(pbn, pba);
        if traced {
            let attempts = 1 + (self.read_repair_rereads - rereads_before);
            self.tracer.attr(ssd_span, "bytes", io_bytes);
            if attempts > 1 {
                self.tracer.attr(ssd_span, "retries", attempts - 1);
            }
            self.tracer
                .advance(self.time.data_ssd_ns(io_bytes * attempts, attempts));
        }
        self.tracer.end(ssd_span);
        let data = fetched?;

        // Steps 5–7: data SSD → Decompression Engine → NIC, all P2P. The
        // host only orchestrates — and with the §7.5 future-work offload,
        // even the read-side NVMe stack leaves the CPU.
        ops::p2p(
            &mut self.ledger,
            PcieLink::DataSsdDecompressionP2p,
            io_bytes,
        );
        if !self.cfg.read_stack_offload {
            self.ledger
                .charge_cpu(CpuTask::DataSsdStack, cost.data_ssd_io_cycles);
        }
        self.ledger.data_ssd_read_bytes += io_bytes;

        let decompress_span = self.tracer.begin("compress");
        if traced {
            self.tracer
                .attr(decompress_span, "compressed_bytes", io_bytes);
            self.tracer
                .advance(self.time.compress_ns(data.len() as u64));
        }
        self.tracer.end(decompress_span);

        ops::p2p(
            &mut self.ledger,
            PcieLink::DecompressionNicP2p,
            data.len() as u64,
        );
        let nic_span = self.tracer.begin("nic");
        if traced {
            self.tracer.advance(self.time.nic_ns(data.len() as u64));
        }
        self.tracer.end(nic_span);

        if !self.hot_cache.is_disabled() {
            // Admission copies the decompressed block into host DRAM.
            ops::cpu_touch(&mut self.ledger, MemPath::DataSsdStaging, data.len() as u64);
            self.hot_cache.offer(lba, data.clone());
        }
        if traced {
            self.advance_host(mark);
        }
        Ok(data)
    }

    /// Hot-read-cache counters (inert unless enabled in the config).
    pub fn hot_cache_stats(&self) -> HotCacheStats {
        self.hot_cache.stats()
    }

    /// Drains the NIC, seals any open container and flushes the cache —
    /// a clean shutdown barrier.
    ///
    /// # Errors
    ///
    /// Propagates backend errors from the final batch.
    pub fn flush(&mut self) -> Result<(), FidrError> {
        let op = self.tracer.begin("flush");
        let out = self.flush_inner();
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        out
    }

    fn flush_inner(&mut self) -> Result<(), FidrError> {
        while self.nic.pending_len() > 0 {
            self.process_batch()?;
        }
        // Drain the dedup scrubber before sealing: every deferred write
        // either gains its table entry or is remapped onto its canonical
        // copy, so a flushed system has no pending dedup debt.
        while self.deferred_pending() > 0 {
            self.scrub_deferred(usize::MAX)?;
        }
        if !self.builder.is_empty() {
            self.seal_container()?;
        }
        self.cache
            .flush_all(&mut self.table_ssd)
            .map_err(|e| FidrError::Io(e.to_string()))
    }

    /// Charges `accesses` Cache HW-Engine operations against the fault
    /// plan's failure schedule and, once the engine dies, degrades to the
    /// software table cache: dirty lines flush, the same index rebuilds
    /// behind a CPU B+ tree, and correctness is preserved — only the
    /// indexing cost moves back to the host (visible as
    /// `degraded.hw_engine.count` and a flipped `cache.hw_engine.enabled`).
    fn check_engine(&mut self, accesses: u64) -> Result<(), FidrError> {
        if !matches!(self.cache.mode(), CacheMode::HwEngine { .. }) {
            return Ok(());
        }
        self.faults.engine_accesses(accesses);
        if !self.faults.engine_failed() {
            return Ok(());
        }
        // Flush before retiring the backend; if the flush itself fails the
        // degradation is retried on the next engine access.
        self.cache
            .flush_all(&mut self.table_ssd)
            .map_err(|e| FidrError::Io(e.to_string()))?;
        let sw = CacheBackend::new(
            CacheMode::Software,
            self.cfg.cache_lines,
            None,
            self.cfg.cache_shards.max(1),
        );
        if let CacheBackend::Hw(c) = std::mem::replace(&mut self.cache, sw) {
            self.carry_cache_stats.merge(c.stats());
            self.retired_hw = Some(c);
        }
        Ok(())
    }

    /// Processes one NIC hash batch through steps 2–10 of Figure 6a.
    ///
    /// With [`FidrConfig::workers`] > 1 (and an inert fault plan — armed
    /// faults key off global device-call order, so they force the serial
    /// path) the batch pipeline fans out over the persistent
    /// [`WorkerPool`] built once at construction: hashing runs the
    /// multi-lane SHA-256 kernel (`fidr_hash::digest_batch`) when
    /// `max(hash_engines, workers)` > 1, dedup lookups run shard-owned
    /// via [`CacheBackend::lookup_batch_parallel`] on the pool, and
    /// lookup-flagged uniques precompress speculatively on the pool. All
    /// ledger charges, spans and commits replay on this thread in batch
    /// order, so every modelled export is byte-identical for any worker
    /// count.
    fn process_batch(&mut self) -> Result<(), FidrError> {
        let cost = self.cfg.cost;
        let traced = self.tracer.is_enabled();
        let workers = if self.cfg.faults.is_inert() {
            self.cfg.workers.max(1)
        } else {
            1
        };
        // Step 2: in-NIC hashing (no CPU, no host memory). The modelled
        // hash time below stays keyed to `hash_engines`; `workers` only
        // widens the physical fan-out.
        let batch = self
            .nic
            .take_hash_batch_with_engines(self.cfg.hash_batch, self.cfg.hash_engines.max(workers));
        if batch.is_empty() {
            return Ok(());
        }

        let hash_span = self.tracer.begin("hash");
        if traced {
            let hashed: u64 = batch.iter().map(|c| c.data.len() as u64).sum();
            self.tracer.attr(hash_span, "chunks", batch.len());
            self.tracer
                .advance(self.time.hash_ns(hashed, self.cfg.hash_engines));
        }
        self.tracer.end(hash_span);
        let mut host_mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };

        // Hashes + LBAs to the device manager: 40 B per chunk.
        let meta_bytes = batch.len() as u64 * 40;
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::NicHost,
            MemPath::NicBuffering,
            meta_bytes,
        );
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);

        // Steps 3–5: the device manager computes every chunk's bucket
        // location, ships the whole batch to the cache engine (Figure 8's
        // batch interface), and scans the returned lines for duplicate
        // status — the host-software cost FIDR keeps (§5.2.4).
        let num_buckets = self.table_ssd.num_buckets();
        let requests: Vec<(u64, fidr_hash::Fingerprint)> = batch
            .iter()
            .map(|c| (c.fingerprint.bucket_index(num_buckets), c.fingerprint))
            .collect();
        for _ in &batch {
            self.ledger
                .charge_cpu(CpuTask::DeviceManager, cost.device_manager_cycles_per_chunk);
            self.ledger
                .charge_cpu(CpuTask::Other, cost.misc_cycles_per_chunk);
        }
        // Hybrid prioritized dedup: classify each chunk's stream by
        // temporal locality — serially, in batch order, so the decisions
        // are byte-identical for any worker count — and send only
        // hot-stream chunks through the inline DRAM-tier lookup.
        // Cold-stream chunks skip it entirely: they commit as
        // provisional uniques and the scrubber dedups them later
        // through the slow tier.
        let temps: Option<Vec<Temperature>> = self.tiered.as_mut().map(|ts| {
            batch
                .iter()
                .map(|c| {
                    ts.policy
                        .observe(c.lba.0 >> ts.stream_shift, c.fingerprint.prefix_u64())
                })
                .collect()
        });
        let (lookups, lookup_idx): (Vec<(u64, fidr_hash::Fingerprint)>, Option<Vec<usize>>) =
            match &temps {
                Some(t) => {
                    let idx: Vec<usize> = (0..requests.len())
                        .filter(|&i| t[i] == Temperature::Hot)
                        .collect();
                    (idx.iter().map(|&i| requests[i]).collect(), Some(idx))
                }
                None => (requests, None),
            };
        self.check_engine(lookups.len() as u64)?;
        if traced {
            host_mark = self.advance_host(host_mark);
        }
        let cache_span = self.tracer.begin("cache");
        let cache_marks = if traced {
            Some(self.cache_marks())
        } else {
            None
        };
        let results = if let (true, Some(pool)) = (workers > 1, self.pool.as_ref()) {
            self.cache.lookup_batch_parallel(
                &lookups,
                &mut self.table_ssd,
                &mut self.ledger,
                &cost,
                workers,
                pool,
            )
        } else {
            self.cache
                .lookup_batch(&lookups, &mut self.table_ssd, &mut self.ledger, &cost)
        }
        .map_err(|e| FidrError::Io(e.to_string()))?;
        let mut resolved: Vec<Option<Pbn>> = vec![None; batch.len()];
        for (j, (pbn, _access)) in results.into_iter().enumerate() {
            let i = lookup_idx.as_ref().map_or(j, |idx| idx[j]);
            resolved[i] = pbn;
        }
        let unique_flags: Vec<bool> = resolved.iter().map(Option::is_none).collect();
        if let Some(marks) = cache_marks {
            let dup_hits = resolved.iter().filter(|p| p.is_some()).count();
            self.tracer.attr(cache_span, "dup_hits", dup_hits);
            self.tracer
                .attr(cache_span, "uniques", batch.len() - dup_hits);
            self.finish_cache_span(cache_span, marks);
            host_mark = self.time.host_ns(&self.ledger);
        } else {
            self.tracer.end(cache_span);
        }

        // Step 6: uniqueness flags return to the NIC (1 B per chunk).
        ops::dma_from_host(
            &mut self.ledger,
            PcieLink::NicHost,
            MemPath::NicBuffering,
            batch.len() as u64,
        );

        // Step 7: the compression scheduler ships unique chunks NIC →
        // Compression Engine peer-to-peer.
        for (i, chunk) in batch.iter().enumerate() {
            if unique_flags[i] {
                ops::p2p(
                    &mut self.ledger,
                    PcieLink::NicCompressionP2p,
                    chunk.data.len() as u64,
                );
            }
        }

        if traced {
            self.advance_host(host_mark);
        }

        // Parallel pipeline: speculatively compress the lookup-flagged
        // uniques on the worker pool. A chunk whose content an earlier
        // entry of this batch commits first fails re-validation in
        // `commit_unique_with` and its speculative output is discarded
        // unrecorded — exactly the chunks the serial path never
        // compresses.
        let mut precompressed =
            precompress_uniques(&batch, &unique_flags, workers, self.pool.as_ref());

        // Commit each chunk in batch order: duplicates update the LBA
        // map; uniques compress, stage in engine DRAM, and gain table
        // entries.
        for (i, (chunk, pbn)) in batch.into_iter().zip(resolved).enumerate() {
            let cold = temps.as_ref().is_some_and(|t| t[i] == Temperature::Cold);
            match pbn {
                Some(pbn) => {
                    let span = self.tracer.begin("dedup");
                    if traced {
                        self.tracer.attr(span, "lba", chunk.lba.0);
                        self.tracer.attr(span, "dedup_hit", true);
                        self.tracer
                            .advance(self.time.cycles_ns(cost.lba_map_cycles));
                    }
                    self.stats.duplicate_chunks += 1;
                    self.map_lba(chunk.lba, pbn);
                    self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
                    self.nic.complete(chunk.lba);
                    self.tracer.end(span);
                }
                None if cold => {
                    self.commit_deferred(chunk, precompressed[i].take())?;
                }
                None => {
                    self.commit_unique_with(chunk, precompressed[i].take())?;
                }
            }
        }
        // Opportunistic scrub: once enough cold writes have accumulated,
        // dedup them through the slow tier. Triggered by queue depth, not
        // time, so it fires at the same points for any worker count.
        while self
            .tiered
            .as_ref()
            .is_some_and(|ts| ts.deferred.len() >= ts.scrub_batch)
        {
            let limit = self.tiered.as_ref().map_or(0, |ts| ts.scrub_batch);
            self.scrub_deferred(limit)?;
        }
        Ok(())
    }

    /// Stores one unique chunk: compression in the engine, container
    /// staging, metadata updates (steps 7–10), optionally consuming a
    /// result precompressed on the worker pool. If re-validation finds
    /// the content already stored, `pre` is dropped without recording any
    /// compression stats — matching the serial path, which would not have
    /// compressed the chunk at all.
    fn commit_unique_with(
        &mut self,
        chunk: HashedChunk,
        pre: Option<(CompressedChunk, std::time::Duration)>,
    ) -> Result<(), FidrError> {
        let cost = self.cfg.cost;
        let traced = self.tracer.is_enabled();
        let commit_span = self.tracer.begin("commit");
        self.tracer.attr(commit_span, "lba", chunk.lba.0);

        // Step 10 begins with re-validation: an identical chunk earlier in
        // this batch may have stored the content already (the flags were
        // computed before any commit).
        let bucket_idx = chunk.fingerprint.bucket_index(self.table_ssd.num_buckets());
        self.check_engine(1)?;
        let cache_span = self.tracer.begin("cache");
        let cache_marks = if traced {
            Some(self.cache_marks())
        } else {
            None
        };
        let access = self
            .cache
            .access_for_update(bucket_idx, &mut self.table_ssd, &mut self.ledger, &cost)
            .map_err(|e| FidrError::Io(e.to_string()))?;
        if let Some(pbn) = self.cache.bucket(access.line).lookup(&chunk.fingerprint) {
            if let Some(marks) = cache_marks {
                self.finish_cache_span(cache_span, marks);
            } else {
                self.tracer.end(cache_span);
            }
            self.tracer.attr(commit_span, "dedup_hit", true);
            self.stats.duplicate_chunks += 1;
            self.map_lba(chunk.lba, pbn);
            self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
            self.nic.complete(chunk.lba);
            self.tracer.end(commit_span);
            return Ok(());
        }
        if let Some(marks) = cache_marks {
            self.finish_cache_span(cache_span, marks);
        } else {
            self.tracer.end(cache_span);
        }
        self.tracer.attr(commit_span, "dedup_hit", false);
        self.stats.unique_chunks += 1;

        // Compression happens inside the engine; output stays in engine
        // DRAM until the container seals.
        let compressed = self.compress_chunk_with(&chunk.data, pre);
        let host_mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };
        self.ledger.fpga_dram_bytes += compressed.stored_len() as u64;
        self.stats.stored_bytes += compressed.stored_len() as u64;

        let pbn = Pbn(self.next_pbn);
        self.next_pbn += 1;

        self.cache
            .bucket_mut(access.line)
            .insert(chunk.fingerprint, pbn)
            .map_err(|e| match e {
                BucketInsertError::Full => FidrError::TableFull,
                // Duplicate fingerprints are screened by the lookup above
                // and PBNs are allocated sequentially well below the
                // 6-byte ceiling, so anything else is state corruption.
                other => FidrError::Corrupt(other.to_string()),
            })?;

        // Step 8: metadata (compressed size, LBA) to the host.
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            16,
        );

        let slot = self.builder.append(&compressed);
        self.staging.insert(slot.offset, chunk.data.to_vec());
        self.lba_map.record_pbn(
            pbn,
            PbnLocation {
                container: self.builder.id(),
                offset: slot.offset,
                compressed_len: slot.compressed_len,
            },
        );
        self.pbn_fp.insert(pbn, chunk.fingerprint);
        self.container_pbns
            .entry(self.builder.id())
            .or_default()
            .push(pbn);
        self.liveness.record_append(self.builder.id());
        self.map_lba(chunk.lba, pbn);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
        if traced {
            self.advance_host(host_mark);
        }

        if self.builder.is_full() {
            self.seal_container()?;
        }

        // The NIC can release the buffered copy now that the backend has
        // durably staged it.
        self.nic.complete(chunk.lba);
        self.tracer.end(commit_span);
        Ok(())
    }

    /// Stores one cold-stream chunk as a *provisional* unique: same
    /// compression/staging/metadata path as
    /// [`commit_unique_with`](Self::commit_unique_with), but with no
    /// inline table lookup or insert — the chunk is queued for the dedup
    /// scrubber, which later either installs its Hash-PBN entry or finds
    /// a canonical copy and retires this one.
    fn commit_deferred(
        &mut self,
        chunk: HashedChunk,
        pre: Option<(CompressedChunk, std::time::Duration)>,
    ) -> Result<(), FidrError> {
        let cost = self.cfg.cost;
        let traced = self.tracer.is_enabled();
        let commit_span = self.tracer.begin("commit");
        self.tracer.attr(commit_span, "lba", chunk.lba.0);
        self.tracer.attr(commit_span, "deferred", true);
        self.stats.unique_chunks += 1;

        let compressed = self.compress_chunk_with(&chunk.data, pre);
        let host_mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };
        self.ledger.fpga_dram_bytes += compressed.stored_len() as u64;
        self.stats.stored_bytes += compressed.stored_len() as u64;

        let pbn = Pbn(self.next_pbn);
        self.next_pbn += 1;

        // Step 8: metadata (compressed size, LBA) to the host.
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            16,
        );

        let slot = self.builder.append(&compressed);
        self.staging.insert(slot.offset, chunk.data.to_vec());
        self.lba_map.record_pbn(
            pbn,
            PbnLocation {
                container: self.builder.id(),
                offset: slot.offset,
                compressed_len: slot.compressed_len,
            },
        );
        self.pbn_fp.insert(pbn, chunk.fingerprint);
        self.container_pbns
            .entry(self.builder.id())
            .or_default()
            .push(pbn);
        self.liveness.record_append(self.builder.id());
        self.map_lba(chunk.lba, pbn);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
        if traced {
            self.advance_host(host_mark);
        }

        if self.builder.is_full() {
            self.seal_container()?;
        }
        self.nic.complete(chunk.lba);
        self.tracer.end(commit_span);

        let bucket = chunk.fingerprint.bucket_index(self.table_ssd.num_buckets());
        let ts = self
            .tiered
            .as_mut()
            .expect("deferred commit requires tiered mode");
        let seq = ts.next_seq;
        ts.next_seq += 1;
        ts.deferred.push_back(DeferredWrite {
            lba: chunk.lba,
            fp: chunk.fingerprint,
            pbn,
            bucket,
            seq,
        });
        ts.stats.deferred_total += 1;
        Ok(())
    }

    /// Runs one dedup-scrubber pass over up to `limit` deferred writes:
    /// stale entries (overwritten before the scrub reached them) are
    /// dropped, survivors are grouped by Hash-PBN bucket and pushed
    /// through the slow tier ([`CacheBackend::scrub_groups`] — parallel
    /// over the worker pool when available, with charges replayed in
    /// group order), and any entry whose fingerprint already has a
    /// canonical copy is remapped to it, retiring the provisional chunk
    /// for the next GC pass. Returns the number of queue entries
    /// consumed. A no-op without [`FidrConfig::tiered`].
    ///
    /// # Errors
    ///
    /// [`FidrError::Io`] when the slow tier fails past the retry budget;
    /// the whole batch is re-queued in order (scrubbing is idempotent,
    /// so entries that did apply simply re-report as existing).
    pub fn scrub_deferred(&mut self, limit: usize) -> Result<usize, FidrError> {
        let Some(mut ts) = self.tiered.take() else {
            return Ok(0);
        };
        let out = self.scrub_deferred_inner(&mut ts, limit);
        self.tiered = Some(ts);
        out
    }

    fn scrub_deferred_inner(
        &mut self,
        ts: &mut TieredState,
        limit: usize,
    ) -> Result<usize, FidrError> {
        let take = limit.min(ts.deferred.len());
        if take == 0 {
            return Ok(0);
        }
        let cost = self.cfg.cost;
        let traced = self.tracer.is_enabled();
        let drained: Vec<DeferredWrite> = ts.deferred.drain(..take).collect();
        // Stale pre-filter, serial and before any cache work: an entry
        // whose provisional chunk already died (its LBA was overwritten)
        // must never install fp → dead-PBN in the table.
        let mut survivors = Vec::with_capacity(drained.len());
        for e in drained {
            if self.lba_map.refcount(e.pbn) == 0 {
                ts.stats.scrub_stale += 1;
            } else {
                survivors.push(e);
            }
        }
        ts.stats.scrub_processed += take as u64;
        if survivors.is_empty() {
            return Ok(take);
        }
        // Group by bucket; the sort is stable, so entries within a bucket
        // keep their deferral order.
        survivors.sort_by_key(|e| e.bucket);
        let mut groups: Vec<(u64, Vec<(Fingerprint, Pbn)>)> = Vec::new();
        let mut group_entries: Vec<Vec<DeferredWrite>> = Vec::new();
        for e in survivors {
            match groups.last_mut() {
                Some((bucket, entries)) if *bucket == e.bucket => {
                    entries.push((e.fp, e.pbn));
                    group_entries
                        .last_mut()
                        .expect("entries track groups")
                        .push(e);
                }
                _ => {
                    groups.push((e.bucket, vec![(e.fp, e.pbn)]));
                    group_entries.push(vec![e]);
                }
            }
        }
        self.check_engine(groups.len() as u64)?;

        let span = self.tracer.begin("scrub");
        if traced {
            self.tracer.attr(span, "groups", groups.len());
            self.tracer.attr(
                span,
                "entries",
                group_entries.iter().map(Vec::len).sum::<usize>(),
            );
        }
        let host_mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };
        let workers = if self.cfg.faults.is_inert() {
            self.cfg.workers.max(1)
        } else {
            1
        };
        let outcome = if let (true, Some(pool)) = (workers > 1, self.pool.as_ref()) {
            self.cache.scrub_groups_parallel(
                &groups,
                &mut self.table_ssd,
                &mut self.ledger,
                &cost,
                workers,
                pool,
            )
        } else {
            self.cache
                .scrub_groups(&groups, &mut self.table_ssd, &mut self.ledger, &cost)
        };
        let applied = match outcome {
            Ok(applied) => applied,
            Err(e) => {
                // Re-queue the whole batch in deferral order for a later
                // retry: groups that did apply before the failure are
                // harmless to re-scrub (idempotent).
                self.tracer.attr(span, "error", "io");
                self.tracer.end(span);
                let mut back: Vec<DeferredWrite> = group_entries.into_iter().flatten().collect();
                back.sort_by_key(|e| e.seq);
                for e in back.into_iter().rev() {
                    ts.deferred.push_front(e);
                }
                return Err(FidrError::Io(e.to_string()));
            }
        };
        for (group, entries) in applied.iter().zip(&group_entries) {
            if group.resident {
                ts.stats.cold_resident += 1;
            } else {
                ts.stats.cold_fetches += 1;
                if group.wrote_back {
                    ts.stats.cold_writebacks += 1;
                }
            }
            for (result, e) in group.results.iter().zip(entries) {
                match result {
                    ScrubResult::Existing(p) if *p != e.pbn => {
                        // A canonical copy exists: deferred dedup. The
                        // provisional chunk loses its only reference and
                        // queues for GC.
                        self.stats.unique_chunks -= 1;
                        self.stats.duplicate_chunks += 1;
                        self.map_lba(e.lba, *p);
                        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
                        ts.stats.scrub_dups += 1;
                    }
                    // `Existing(own pbn)` is a retried entry that already
                    // applied — counts as its (idempotent) insert.
                    ScrubResult::Existing(_) | ScrubResult::Inserted => {
                        ts.stats.scrub_inserts += 1;
                    }
                    // Bucket full: the chunk simply stays stored unique;
                    // only the dedup opportunity is lost.
                    ScrubResult::Full => {
                        ts.stats.scrub_table_full += 1;
                    }
                }
            }
        }
        ts.stats.scrub_runs += 1;
        if traced {
            let now = self.time.host_ns(&self.ledger);
            self.tracer.advance(now.saturating_sub(host_mark));
        }
        self.tracer.end(span);
        Ok(take)
    }

    /// Cold-stream writes currently queued for the dedup scrubber.
    pub fn deferred_pending(&self) -> usize {
        self.tiered.as_ref().map_or(0, |ts| ts.deferred.len())
    }

    /// Every currently mapped LBA, in address order. The enumeration a
    /// serving node walks to rehome resident blocks when the cluster's
    /// shard map changes — each listed LBA is readable right now.
    pub fn mapped_lbas(&self) -> Vec<Lba> {
        let mut lbas: Vec<Lba> = self.lba_map.lba_entries().map(|(lba, _)| lba).collect();
        lbas.sort_by_key(|l| l.0);
        lbas
    }

    /// Captures all durable state for persistence. Flushes first, so the
    /// NIC buffer drains, the open container seals, and dirty cache lines
    /// reach the table SSDs — everything in the snapshot is then "on
    /// stable media".
    ///
    /// # Errors
    ///
    /// Propagates backend errors from the flush.
    pub fn checkpoint(&mut self) -> Result<crate::Snapshot, FidrError> {
        self.flush()?;
        let store = self.table_ssd.store();
        let mut table_buckets = Vec::new();
        for idx in 0..store.num_buckets() {
            let bucket = store.bucket(idx);
            if !bucket.is_empty() {
                table_buckets.push((idx, bucket.clone()));
            }
        }
        Ok(crate::Snapshot {
            num_buckets: store.num_buckets(),
            table_buckets,
            lbas: self.lba_map.lba_entries().collect(),
            pbns: self.lba_map.pbn_entries().collect(),
            containers: self.data_ssd.containers().cloned().collect(),
            next_pbn: self.next_pbn,
            next_container: self.next_container,
            pbn_fp: self.pbn_fp.iter().map(|(&p, &f)| (p, f)).collect(),
            liveness: self.liveness.entries().collect(),
            dead: self.dead.clone(),
        })
    }

    /// Rebuilds a server from a [`crate::Snapshot`] (restart recovery).
    /// The snapshot's table geometry overrides `cfg.table_buckets`; the
    /// caches start cold.
    pub fn restore(cfg: FidrConfig, snapshot: crate::Snapshot) -> Self {
        use fidr_tables::HashPbnStore;
        let cfg = FidrConfig {
            table_buckets: snapshot.num_buckets,
            ..cfg
        };
        let mut sys = FidrSystem::new(cfg);

        let mut store = HashPbnStore::new(snapshot.num_buckets);
        for (idx, bucket) in snapshot.table_buckets {
            store.write_bucket(idx, bucket);
        }
        let queue_location = match sys.cfg.cache_mode {
            CacheMode::Software => QueueLocation::HostMemory,
            CacheMode::HwEngine { .. } => QueueLocation::CacheEngine,
        };
        sys.table_ssd = TableSsd::from_store(store, queue_location);
        sys.table_ssd
            .set_fault_injector(sys.faults.clone(), sys.cfg.retry);

        for container in snapshot.containers {
            sys.data_ssd.load_container(container);
        }
        sys.lba_map = LbaPbaTable::from_entries(snapshot.lbas, snapshot.pbns);
        sys.next_pbn = snapshot.next_pbn;
        sys.next_container = snapshot.next_container;
        sys.builder = ContainerBuilder::new(snapshot.next_container, sys.cfg.container_threshold);
        sys.pbn_fp = snapshot.pbn_fp.into_iter().collect();
        sys.container_pbns.clear();
        for (pbn, loc) in sys.lba_map.pbn_entries().collect::<Vec<_>>() {
            sys.container_pbns
                .entry(loc.container)
                .or_default()
                .push(pbn);
        }
        sys.liveness = ContainerLiveness::from_entries(snapshot.liveness);
        sys.dead = snapshot.dead;
        sys
    }

    /// Points `lba` at `pbn`, queueing any orphaned chunk for collection.
    /// A duplicate hit on a dead-but-uncollected chunk resurrects it.
    fn map_lba(&mut self, lba: Lba, pbn: Pbn) {
        self.hot_cache.invalidate(lba);
        let resurrecting = self.lba_map.refcount(pbn) == 0 && self.dead.contains(&pbn);
        if resurrecting {
            let loc = self
                .lba_map
                .location(pbn)
                .expect("queued dead PBN is located");
            self.liveness.record_revive(loc.container);
            self.dead.retain(|&d| d != pbn);
        }
        if let Some(dead) = self.lba_map.map_write(lba, pbn) {
            if let Some(loc) = self.lba_map.location(dead) {
                self.liveness.record_dead(loc.container);
            }
            self.dead.push(dead);
        }
    }

    /// Garbage collection: reclaims the metadata of dead chunks, then
    /// compacts containers whose live fraction fell below
    /// `live_threshold` by rewriting survivors into the open container
    /// (data SSD → Compression Engine → back, all off-host) and dropping
    /// the old container.
    ///
    /// The paper's evaluation never reaches steady-state overwrite churn,
    /// so this is an extension — but any production deployment of an
    /// append-only reduced store needs it.
    ///
    /// # Errors
    ///
    /// Propagates data-SSD decode failures.
    pub fn collect_garbage(&mut self, live_threshold: f64) -> Result<GcReport, FidrError> {
        let cost = self.cfg.cost;
        let mut report = GcReport::default();

        // Phase 1: metadata reclamation for dead chunks. The dead list is
        // only consumed entry-by-entry as each reclaim commits: an error
        // mid-pass requeues the current chunk and every later one, so an
        // interrupted pass never leaks dead metadata.
        let dead = std::mem::take(&mut self.dead);
        for (idx, &pbn) in dead.iter().enumerate() {
            if self.lba_map.refcount(pbn) > 0 {
                continue; // resurrected after being queued
            }
            let fp = *self
                .pbn_fp
                .get(&pbn)
                .expect("dead PBN has a fingerprint on record");
            let bucket_idx = fp.bucket_index(self.table_ssd.num_buckets());
            let access = self.check_engine(1).and_then(|()| {
                self.cache
                    .access_for_update(bucket_idx, &mut self.table_ssd, &mut self.ledger, &cost)
                    .map_err(|e| FidrError::Io(e.to_string()))
            });
            let access = match access {
                Ok(access) => access,
                Err(e) => {
                    self.dead.extend(dead[idx..].iter().copied());
                    return Err(e);
                }
            };
            self.pbn_fp.remove(&pbn);
            self.lba_map.reclaim(pbn);
            // Only delete the table entry if it still names *this* PBN: a
            // retired provisional chunk (deferred dedup) shares its
            // fingerprint with the live canonical copy, whose entry must
            // survive.
            if self.cache.bucket(access.line).lookup(&fp) == Some(pbn) {
                self.cache.bucket_mut(access.line).remove(&fp);
            }
            report.reclaimed_pbns += 1;
        }

        // Phase 2: container compaction.
        for container in self.liveness.sparse_containers(live_threshold) {
            if container == self.builder.id() {
                continue; // never compact the still-open container
            }
            // Clone rather than remove: an error mid-compaction (a failed
            // seal, an unreadable survivor) must leave the survivor list
            // intact so a later pass can finish the move — otherwise the
            // next pass would see an "empty" container and drop it while
            // live chunks still point there. The entry is only discarded
            // once every survivor is safely relocated.
            let pbns = self
                .container_pbns
                .get(&container)
                .cloned()
                .unwrap_or_default();
            for pbn in pbns {
                if self.lba_map.refcount(pbn) == 0 {
                    continue;
                }
                let loc = self.lba_map.location(pbn).expect("live PBN located");
                if loc.container != container {
                    continue; // already moved by an earlier pass
                }
                // Survivor rewrite: SSD → Decompression → Compression →
                // open container, orchestrated by the device manager.
                // Verified against the chunk's fingerprint so compaction
                // never propagates a transient read corruption.
                let data = self.fetch_chunk_verified(
                    Some(pbn),
                    Pba {
                        container: loc.container,
                        offset: loc.offset,
                        compressed_len: loc.compressed_len,
                    },
                )?;
                let io_bytes = loc.compressed_len as u64 + 4;
                ops::p2p(
                    &mut self.ledger,
                    PcieLink::DataSsdDecompressionP2p,
                    io_bytes,
                );
                self.ledger
                    .charge_cpu(CpuTask::DataSsdStack, cost.data_ssd_io_cycles);
                self.ledger.data_ssd_read_bytes += io_bytes;

                let compressed = self.compress_chunk(&data);
                self.ledger.fpga_dram_bytes += compressed.stored_len() as u64;
                report.copied_bytes += compressed.stored_len() as u64;
                let slot = self.builder.append(&compressed);
                self.staging.insert(slot.offset, data);
                self.lba_map.relocate(
                    pbn,
                    PbnLocation {
                        container: self.builder.id(),
                        offset: slot.offset,
                        compressed_len: slot.compressed_len,
                    },
                );
                self.container_pbns
                    .entry(self.builder.id())
                    .or_default()
                    .push(pbn);
                self.liveness.record_append(self.builder.id());
                report.moved_chunks += 1;
                if self.builder.is_full() {
                    self.seal_container()?;
                }
            }
            self.container_pbns.remove(&container);
            if let Some(freed) = self.data_ssd.remove_container(container) {
                report.freed_bytes += freed;
            }
            self.liveness.remove(container);
            report.compacted_containers += 1;
        }
        self.gc_runs += 1;
        self.gc_total.absorb(report);
        Ok(report)
    }

    /// Dead chunks currently queued for the next collection pass.
    pub fn pending_dead_chunks(&self) -> usize {
        self.dead.len()
    }

    /// Client deletes acknowledged over this system's lifetime.
    pub fn deletes_acked(&self) -> u64 {
        self.deletes_acked
    }

    /// Cumulative outcome of every garbage-collection pass so far.
    pub fn gc_totals(&self) -> GcReport {
        self.gc_total
    }

    /// Fault injection for tests and demos: flips one stored bit on the
    /// data SSDs. The next scrub (or read) of the affected chunk must
    /// detect it. Returns `false` if the location does not exist.
    pub fn inject_data_corruption(&mut self, container: u64, byte: usize) -> bool {
        self.data_ssd.inject_corruption(container, byte)
    }

    /// Background integrity scrub (fsck): walks every live chunk, reads
    /// it back through the normal datapath, recomputes its SHA-256 and
    /// checks it against the Hash-PBN record. Transient read corruption
    /// (an in-flight bit flip) is healed by bounded re-reads and counts
    /// as verified; only persistent mismatches fail the scrub. Returns
    /// the number of chunks verified.
    ///
    /// # Errors
    ///
    /// [`FidrError::Corrupt`] for the first PBN whose stored bytes no
    /// longer match their recorded fingerprint after re-reads.
    pub fn verify_integrity(&mut self) -> Result<u64, FidrError> {
        let live: Vec<(Pbn, PbnLocation)> = self
            .lba_map
            .pbn_entries()
            .filter(|(pbn, _)| self.lba_map.refcount(*pbn) > 0)
            .collect();
        let mut verified = 0u64;
        for (pbn, loc) in live {
            if !self.pbn_fp.contains_key(&pbn) {
                return Err(FidrError::Corrupt(format!("{pbn} missing fingerprint")));
            }
            self.fetch_chunk_verified(
                Some(pbn),
                Pba {
                    container: loc.container,
                    offset: loc.offset,
                    compressed_len: loc.compressed_len,
                },
            )?;
            verified += 1;
        }
        Ok(verified)
    }

    /// Compresses one chunk in the (modelled) Compression Engine, timing
    /// the real LZSS work and tracking the achieved ratio.
    fn compress_chunk(&mut self, data: &[u8]) -> CompressedChunk {
        self.compress_chunk_with(data, None)
    }

    /// [`compress_chunk`](Self::compress_chunk), optionally consuming a
    /// `(chunk, wall-clock)` pair precompressed on the worker pool — the
    /// stats, span and modelled time recorded here are identical either
    /// way; only the raw LZSS compute is skipped.
    fn compress_chunk_with(
        &mut self,
        data: &[u8],
        pre: Option<(CompressedChunk, std::time::Duration)>,
    ) -> CompressedChunk {
        let span = self.tracer.begin("compress");
        let (compressed, elapsed) = match pre {
            Some((compressed, elapsed)) => (compressed, elapsed),
            None => {
                let started = Instant::now();
                let compressed = CompressedChunk::compress(data);
                (compressed, started.elapsed())
            }
        };
        self.compress_ns.record_duration(elapsed);
        self.compress_pct
            .record((compressed.ratio() * 100.0).round() as u64);
        match compressed.encoding() {
            Encoding::Lzss => self.compress_lzss_chunks += 1,
            Encoding::Raw => self.compress_raw_chunks += 1,
        }
        self.tracer
            .attr(span, "compressed_bytes", compressed.stored_len() as u64);
        self.tracer.attr(
            span,
            "encoding",
            match compressed.encoding() {
                Encoding::Lzss => "lzss",
                Encoding::Raw => "raw",
            },
        );
        self.tracer
            .advance(self.time.compress_ns(data.len() as u64));
        self.tracer.end(span);
        compressed
    }

    /// Assembles a [`MetricsSnapshot`] covering every pipeline stage: NIC
    /// ingest and hashing, table-cache lookups (and the HW-tree engine
    /// when enabled), table/data SSD IO, compression, reduction outcomes,
    /// the resource ledger, and end-to-end write/read latency. Names and
    /// semantics are documented in `docs/OBSERVABILITY.md`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        self.nic.export_metrics(&mut out);
        self.cache.export_metrics(&mut out);
        self.table_ssd.export_metrics(&mut out);
        self.data_ssd.export_metrics(&mut out);
        self.ledger.export_metrics(&mut out);
        self.stats.export_metrics(&mut out);
        out.set_counter("compress.lzss.chunks", self.compress_lzss_chunks);
        out.set_counter("compress.raw_fallback.chunks", self.compress_raw_chunks);
        out.set_wall_clock_histogram("compress.chunk.ns", &self.compress_ns);
        out.set_histogram("compress.ratio.pct", &self.compress_pct);
        out.set_wall_clock_histogram("system.write.ns", &self.write_ns);
        out.set_wall_clock_histogram("system.read.ns", &self.read_ns);
        self.faults.stats().export_metrics(&mut out);
        out.set_counter("retry.nic.drain_rounds", self.nic_drain_rounds);
        out.set_counter("retry.read_repair.detected", self.read_repair_detected);
        out.set_counter("retry.read_repair.rereads", self.read_repair_rereads);
        out.set_counter("retry.read_repair.repaired", self.read_repair_repaired);
        out.set_counter(
            "retry.read_repair.unrecovered",
            self.read_repair_unrecovered,
        );
        out.set_counter("retry.seal.failures", self.seal_failures);
        out.set_histogram("system.retry.backoff.ns", &self.recovery_backoff_ns);
        out.set_counter(
            "degraded.hw_engine.count",
            u64::from(self.retired_hw.is_some()),
        );
        for (kind, n) in &self.write_errors {
            out.set_counter(&format!("system.write.errors.{kind}"), *n);
        }
        for (kind, n) in &self.read_errors {
            out.set_counter(&format!("system.read.errors.{kind}"), *n);
        }
        for (kind, n) in &self.delete_errors {
            out.set_counter(&format!("system.delete.errors.{kind}"), *n);
        }
        // Lifecycle counters appear only once a delete or a GC pass has
        // actually happened: a store that never deletes exports
        // byte-identically to pre-lifecycle revisions (and the flat/tiered
        // and cross-worker byte-identity tests stay intact).
        if self.deletes_acked > 0 || self.gc_runs > 0 {
            out.set_wall_clock_histogram("system.delete.ns", &self.delete_ns);
            out.set_counter("delete.acked.count", self.deletes_acked);
            out.set_counter("delete.pending_dead.count", self.dead.len() as u64);
            out.set_counter("gc.runs.count", self.gc_runs);
            out.set_counter("gc.reclaimed_pbns.count", self.gc_total.reclaimed_pbns);
            out.set_counter(
                "gc.compacted_containers.count",
                self.gc_total.compacted_containers,
            );
            out.set_counter("gc.moved_chunks.count", self.gc_total.moved_chunks);
            out.set_counter("gc.copied_bytes", self.gc_total.copied_bytes);
            out.set_counter("gc.reclaimed_bytes", self.gc_total.freed_bytes);
        }
        // After a degradation the live backend is software-mode: overwrite
        // the cache.* counters with the merged (HW + software) totals and
        // keep reporting the retired engine's hwtree.* counters.
        let merged = self.cache_stats();
        out.set_counter("cache.accesses.count", merged.accesses);
        out.set_counter("cache.hits.count", merged.hits);
        out.set_counter("cache.misses.count", merged.misses);
        out.set_counter("cache.evictions.count", merged.evictions);
        out.set_counter("cache.dirty_flushes.count", merged.dirty_flushes);
        out.set_gauge("cache.hit.ratio", merged.hit_rate());
        if let Some(t) = self.hwtree_stats() {
            out.set_counter("hwtree.searches.count", t.searches);
            out.set_counter("hwtree.updates.count", t.updates);
            out.set_counter("hwtree.crashes.count", t.crashes);
            out.set_counter("hwtree.cycles.count", t.cycles);
            out.set_counter("hwtree.fpga_dram.bytes", t.fpga_dram_bytes);
            out.set_gauge("hwtree.crash.ratio", t.crash_rate());
        }
        // Tiered-dedup counters appear only once a write was actually
        // deferred: a tiered run whose streams all stayed hot exports
        // byte-identically to the flat cache (tested in
        // tiered_all_hot_matches_flat).
        if let Some(ts) = &self.tiered {
            if ts.stats.deferred_total > 0 {
                let ps = ts.policy.stats();
                out.set_counter("cache.tier.observations.count", ps.observations);
                out.set_counter("cache.tier.observations.hot", ps.hot_observations);
                out.set_counter("cache.tier.observations.cold", ps.cold_observations);
                out.set_counter(
                    "cache.tier.hot_streams.count",
                    ts.policy.hot_streams() as u64,
                );
                out.set_counter(
                    "cache.tier.cold_streams.count",
                    ts.policy.cold_streams() as u64,
                );
                out.set_counter("cache.tier.cold_resident.count", ts.stats.cold_resident);
                out.set_counter("cache.tier.cold_fetches.count", ts.stats.cold_fetches);
                out.set_counter("cache.tier.cold_writebacks.count", ts.stats.cold_writebacks);
                out.set_counter("dedup.deferred.count", ts.stats.deferred_total);
                out.set_counter("dedup.deferred.pending", ts.deferred.len() as u64);
                out.set_counter("scrub.runs.count", ts.stats.scrub_runs);
                out.set_counter("scrub.processed.count", ts.stats.scrub_processed);
                out.set_counter("scrub.dups.count", ts.stats.scrub_dups);
                out.set_counter("scrub.inserts.count", ts.stats.scrub_inserts);
                out.set_counter("scrub.stale.count", ts.stats.scrub_stale);
                out.set_counter("scrub.table_full.count", ts.stats.scrub_table_full);
            }
        }
        let hc = self.hot_cache.stats();
        out.set_counter("hotcache.hits.count", hc.hits);
        out.set_counter("hotcache.misses.count", hc.misses);
        out.set_counter("hotcache.admissions.count", hc.admissions);
        out.set_counter("hotcache.evictions.count", hc.evictions);
        out.set_counter("trace.spans.count", self.tracer.recorded());
        out.set_counter("trace.dropped_spans", self.tracer.dropped());
        out
    }

    /// A snapshot of the persistent worker pool's counters, or `None`
    /// when the system runs serially (workers <= 1 or an armed fault
    /// plan).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.as_ref().map(WorkerPool::stats)
    }

    /// Appends the `pool.*` wall-clock counters to `out`.
    ///
    /// These are deliberately **not** part of [`FidrSystem::metrics`]:
    /// queue depths, steal counts and busy/idle times vary with worker
    /// count and scheduling, while `metrics()` must stay byte-identical
    /// for any `workers` setting (the determinism contract in
    /// `docs/OBSERVABILITY.md`). Callers that want them — `fidr serve`'s
    /// metrics file, diagnostics — opt in explicitly.
    pub fn export_pool_metrics(&self, out: &mut MetricsSnapshot) {
        let Some(stats) = self.pool_stats() else {
            return;
        };
        out.set_counter("pool.workers.count", stats.workers as u64);
        out.set_counter("pool.handoffs.count", stats.handoffs);
        out.set_counter("pool.jobs.stolen", stats.jobs_stolen);
        out.set_counter("pool.jobs.executed", stats.jobs_executed);
        out.set_counter("pool.jobs.panicked", stats.jobs_panicked);
        out.set_counter("pool.scopes.count", stats.scopes);
        out.set_counter("pool.submit.waits", stats.submit_waits);
        out.set_counter("pool.queue.depth", stats.queued as u64);
        out.set_counter("pool.queue.max_depth", stats.max_queue_depth as u64);
        out.set_counter("pool.busy.ns", stats.busy_ns);
        out.set_counter("pool.idle.ns", stats.idle_ns);
    }

    fn fetch_chunk(&mut self, pba: Pba) -> Result<Vec<u8>, FidrError> {
        if pba.container == self.builder.id() {
            return self
                .staging
                .get(&pba.offset)
                .cloned()
                .ok_or_else(|| FidrError::Corrupt("missing staged chunk".to_string()));
        }
        self.data_ssd.read_chunk(pba).map_err(|e| match e {
            fidr_ssd::DataSsdError::Io { .. } => FidrError::Io(e.to_string()),
            _ => FidrError::Corrupt(e.to_string()),
        })
    }

    /// Fetches a chunk and, when its fingerprint is on record, verifies
    /// the returned bytes against it. A mismatch (an in-flight bit flip
    /// on the data-SSD read path) triggers bounded re-reads with modelled
    /// backoff; the stored copy is intact in that case, so a re-read
    /// heals it. Persistent corruption — the stored bytes themselves are
    /// wrong — survives every re-read and errors out.
    fn fetch_chunk_verified(&mut self, pbn: Option<Pbn>, pba: Pba) -> Result<Vec<u8>, FidrError> {
        let data = self.fetch_chunk(pba)?;
        let Some(expect) = pbn.and_then(|p| self.pbn_fp.get(&p).copied()) else {
            return Ok(data);
        };
        if Fingerprint::of(&data) == expect {
            return Ok(data);
        }
        self.read_repair_detected += 1;
        for attempt in 0..self.cfg.retry.max_retries {
            self.read_repair_rereads += 1;
            self.recovery_backoff_ns
                .record_duration(self.cfg.retry.backoff(attempt));
            let data = self.fetch_chunk(pba)?;
            if Fingerprint::of(&data) == expect {
                self.read_repair_repaired += 1;
                return Ok(data);
            }
        }
        self.read_repair_unrecovered += 1;
        Err(FidrError::Corrupt(format!(
            "container {} offset {} fails checksum verification after re-reads",
            pba.container, pba.offset
        )))
    }

    /// Step 9: the data SSD pulls the sealed container straight from the
    /// Compression Engine's memory (P2P); the host only posts the NVMe
    /// command.
    ///
    /// Seals a *clone* of the open builder: on a failed device write the
    /// builder and its staging copies survive intact (and the NIC still
    /// holds the buffered chunks), so a later flush retries the seal and
    /// no acked write is ever lost.
    fn seal_container(&mut self) -> Result<(), FidrError> {
        let bytes = self.builder.len() as u64;
        let span = self.tracer.begin("ssd");
        self.tracer.attr(span, "container_bytes", bytes);
        self.tracer.advance(self.time.data_ssd_ns(bytes, 1));
        if let Err(e) = self.data_ssd.write_container(self.builder.clone().seal()) {
            self.seal_failures += 1;
            self.tracer.attr(span, "error", "io");
            self.tracer.end(span);
            return Err(FidrError::Io(e.to_string()));
        }
        self.tracer.end(span);
        self.next_container += 1;
        self.builder = ContainerBuilder::new(self.next_container, self.cfg.container_threshold);
        self.staging.clear();

        ops::p2p(&mut self.ledger, PcieLink::CompressionDataSsdP2p, bytes);
        self.ledger
            .charge_cpu(CpuTask::DataSsdStack, self.cfg.cost.data_ssd_io_cycles);
        self.ledger.data_ssd_write_bytes += bytes;
        self.stats.containers_sealed += 1;
        Ok(())
    }
}

/// Compresses the unique-flagged chunks of `batch` across up to
/// `workers` persistent pool workers, scattering each result (with its
/// measured wall-clock) back to its batch index. All-`None` when
/// `workers <= 1` or no pool is available: the serial path compresses
/// at commit time instead.
fn precompress_uniques(
    batch: &[HashedChunk],
    unique_flags: &[bool],
    workers: usize,
    pool: Option<&WorkerPool>,
) -> Vec<Option<(CompressedChunk, std::time::Duration)>> {
    let mut out: Vec<Option<(CompressedChunk, std::time::Duration)>> =
        (0..batch.len()).map(|_| None).collect();
    let Some(pool) = pool else {
        return out;
    };
    if workers <= 1 {
        return out;
    }
    let jobs: Vec<usize> = (0..batch.len()).filter(|&i| unique_flags[i]).collect();
    if jobs.is_empty() {
        return out;
    }
    let mut slots: Vec<(usize, Option<(CompressedChunk, std::time::Duration)>)> =
        jobs.iter().map(|&i| (i, None)).collect();
    let per_worker = jobs.len().div_ceil(workers.min(jobs.len()));
    pool.scope(|s| {
        for (k, slice) in slots.chunks_mut(per_worker).enumerate() {
            s.spawn_on(k, || {
                for (i, slot) in slice.iter_mut() {
                    let started = Instant::now();
                    let compressed = CompressedChunk::compress(&batch[*i].data);
                    *slot = Some((compressed, started.elapsed()));
                }
            });
        }
    });
    for (i, slot) in slots {
        out[i] = slot;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> FidrSystem {
        FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            hash_batch: 8,
            ..FidrConfig::default()
        })
    }

    fn chunk(tag: u64) -> Bytes {
        Bytes::from(fidr_compress::ContentGenerator::new(0.5).chunk(tag, 4096))
    }

    #[test]
    fn write_read_roundtrip_via_nic_buffer() {
        let mut s = sys();
        let data = chunk(1);
        s.write(Lba(5), data.clone()).unwrap();
        // Unprocessed write must be readable (NIC buffer hit).
        assert_eq!(s.read(Lba(5)).unwrap(), data.to_vec());
        assert_eq!(s.nic_stats().read_buffer_hits, 1);
    }

    #[test]
    fn write_read_roundtrip_after_flush() {
        let mut s = sys();
        let data = chunk(2);
        s.write(Lba(9), data.clone()).unwrap();
        s.flush().unwrap();
        assert_eq!(s.read(Lba(9)).unwrap(), data.to_vec());
    }

    #[test]
    fn duplicates_are_eliminated() {
        let mut s = sys();
        let data = chunk(7);
        for lba in 0..32u64 {
            s.write(Lba(lba), data.clone()).unwrap();
        }
        s.flush().unwrap();
        let st = s.stats();
        assert_eq!(st.unique_chunks, 1);
        assert_eq!(st.duplicate_chunks, 31);
        for lba in 0..32u64 {
            assert_eq!(s.read(Lba(lba)).unwrap(), data.to_vec());
        }
    }

    #[test]
    fn client_data_never_touches_host_memory() {
        let mut s = sys();
        for i in 0..256u64 {
            s.write(Lba(i), chunk(i)).unwrap();
        }
        s.flush().unwrap();
        let l = s.ledger();
        // Host memory sees only hashes/flags/metadata + table cache work —
        // far below the client payload volume.
        let payload = l.client_write_bytes();
        assert!(l.mem_bytes(MemPath::FpgaStaging) < payload / 50);
        assert!(l.mem_bytes(MemPath::NicBuffering) < payload / 50);
        assert_eq!(l.mem_bytes(MemPath::UniquePrediction), 0);
        assert_eq!(l.mem_bytes(MemPath::DataSsdStaging), 0);
        // The payload went over P2P links instead.
        assert!(l.pcie_bytes(PcieLink::NicCompressionP2p) > 0);
        assert!(l.pcie_bytes(PcieLink::CompressionDataSsdP2p) > 0);
    }

    #[test]
    fn no_predictor_and_no_tree_cpu_in_hw_mode() {
        let mut s = sys();
        for i in 0..128u64 {
            s.write(Lba(i), chunk(i)).unwrap();
        }
        s.flush().unwrap();
        let l = s.ledger();
        assert_eq!(l.cpu_cycles(CpuTask::UniquePrediction), 0);
        assert_eq!(l.cpu_cycles(CpuTask::BatchScheduling), 0);
        assert_eq!(l.cpu_cycles(CpuTask::TreeIndexing), 0);
        assert_eq!(l.cpu_cycles(CpuTask::TableSsdStack), 0);
        assert!(l.cpu_cycles(CpuTask::TableContentScan) > 0);
    }

    #[test]
    fn overwrite_returns_newest_across_batches() {
        let mut s = sys();
        s.write(Lba(1), chunk(1)).unwrap();
        s.flush().unwrap();
        s.write(Lba(1), chunk(2)).unwrap();
        assert_eq!(s.read(Lba(1)).unwrap(), chunk(2).to_vec());
        s.flush().unwrap();
        assert_eq!(s.read(Lba(1)).unwrap(), chunk(2).to_vec());
    }

    #[test]
    fn software_cache_mode_still_correct() {
        let mut s = FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            hash_batch: 8,
            cache_mode: CacheMode::Software,
            ..FidrConfig::default()
        });
        for i in 0..64u64 {
            s.write(Lba(i), chunk(i % 16)).unwrap();
        }
        s.flush().unwrap();
        assert_eq!(s.stats().unique_chunks, 16);
        assert!(s.ledger().cpu_cycles(CpuTask::TreeIndexing) > 0);
        for i in 0..64u64 {
            assert_eq!(s.read(Lba(i)).unwrap(), chunk(i % 16).to_vec());
        }
    }

    #[test]
    fn read_of_unwritten_errors() {
        let mut s = sys();
        assert!(matches!(s.read(Lba(1234)), Err(FidrError::NotMapped(_))));
    }

    #[test]
    fn overwrites_queue_dead_chunks() {
        let mut s = sys();
        for i in 0..16u64 {
            s.write(Lba(i), chunk(i)).unwrap();
        }
        s.flush().unwrap();
        // Overwrite everything with fresh content: all old uniques die.
        for i in 0..16u64 {
            s.write(Lba(i), chunk(100 + i)).unwrap();
        }
        s.flush().unwrap();
        assert_eq!(s.pending_dead_chunks(), 16);
    }

    #[test]
    fn gc_reclaims_metadata_and_compacts_containers() {
        let mut s = sys();
        // Fill several containers, then kill most of their chunks.
        for i in 0..128u64 {
            s.write(Lba(i), chunk(i)).unwrap();
        }
        s.flush().unwrap();
        let stored_before = s.stored_bytes();
        for i in 0..112u64 {
            s.write(Lba(i), chunk(1000 + i)).unwrap();
        }
        s.flush().unwrap();

        let report = s.collect_garbage(0.5).unwrap();
        assert_eq!(report.reclaimed_pbns, 112);
        assert!(report.compacted_containers >= 1, "{report:?}");
        assert!(report.freed_bytes > 0);
        s.flush().unwrap();
        assert!(
            s.stored_bytes() < stored_before + s.stats().stored_bytes / 2,
            "compaction should shrink the footprint"
        );

        // Every LBA still reads its newest content.
        for i in 0..128u64 {
            let want = if i < 112 { chunk(1000 + i) } else { chunk(i) };
            assert_eq!(s.read(Lba(i)).unwrap(), want.to_vec(), "LBA {i}");
        }
    }

    #[test]
    fn gc_then_rewrite_of_same_content_dedups_again() {
        let mut s = sys();
        s.write(Lba(0), chunk(7)).unwrap();
        s.flush().unwrap();
        s.write(Lba(0), chunk(8)).unwrap(); // kills content 7
        s.flush().unwrap();
        s.collect_garbage(1.1).unwrap(); // collect everything sparse
                                         // Rewriting content 7 must be a fresh unique (entry was removed).
        s.write(Lba(1), chunk(7)).unwrap();
        s.flush().unwrap();
        assert_eq!(s.read(Lba(1)).unwrap(), chunk(7).to_vec());
        assert_eq!(s.stats().unique_chunks, 3);
    }

    #[test]
    fn resurrection_before_gc_is_safe() {
        let mut s = sys();
        s.write(Lba(0), chunk(5)).unwrap();
        s.flush().unwrap();
        s.write(Lba(0), chunk(6)).unwrap(); // content 5 dies
        s.flush().unwrap();
        assert_eq!(s.pending_dead_chunks(), 1);
        s.write(Lba(1), chunk(5)).unwrap(); // content 5 resurrects via dedup
        s.flush().unwrap();
        assert_eq!(s.pending_dead_chunks(), 0);
        let report = s.collect_garbage(1.1).unwrap();
        assert_eq!(report.reclaimed_pbns, 0);
        assert_eq!(s.read(Lba(1)).unwrap(), chunk(5).to_vec());
    }

    #[test]
    fn delete_unmaps_and_gc_reclaims_the_space() {
        let mut s = sys();
        for i in 0..64u64 {
            s.write(Lba(i), chunk(i)).unwrap();
        }
        s.flush().unwrap();
        let stored_before = s.stored_bytes();
        for i in 0..56u64 {
            s.delete(Lba(i)).unwrap();
        }
        assert_eq!(s.deletes_acked(), 56);
        assert_eq!(s.pending_dead_chunks(), 56);
        // Deleted LBAs are gone; survivors still read.
        assert_eq!(s.read(Lba(0)).unwrap_err(), FidrError::NotMapped(Lba(0)));
        assert_eq!(s.read(Lba(60)).unwrap(), chunk(60).to_vec());
        // Double delete is a clean NotMapped error, not a panic.
        assert_eq!(s.delete(Lba(0)).unwrap_err(), FidrError::NotMapped(Lba(0)));

        let report = s.collect_garbage(0.5).unwrap();
        assert_eq!(report.reclaimed_pbns, 56);
        assert!(report.freed_bytes > 0, "{report:?}");
        s.flush().unwrap();
        assert!(s.stored_bytes() < stored_before, "space must come back");
        assert_eq!(s.gc_totals().freed_bytes, report.freed_bytes);
        for i in 56..64u64 {
            assert_eq!(s.read(Lba(i)).unwrap(), chunk(i).to_vec(), "LBA {i}");
        }
    }

    #[test]
    fn delete_of_shared_chunk_keeps_other_references_readable() {
        let mut s = sys();
        let data = chunk(9);
        s.write(Lba(1), data.clone()).unwrap();
        s.write(Lba(2), data.clone()).unwrap();
        s.flush().unwrap();
        s.delete(Lba(1)).unwrap();
        // The chunk is still referenced: nothing queues for collection
        // and GC must not touch it.
        assert_eq!(s.pending_dead_chunks(), 0);
        let report = s.collect_garbage(1.1).unwrap();
        assert_eq!(report.reclaimed_pbns, 0);
        assert_eq!(s.read(Lba(2)).unwrap(), data.to_vec());
        // Dropping the last reference finally frees it.
        s.delete(Lba(2)).unwrap();
        assert_eq!(s.pending_dead_chunks(), 1);
        let report = s.collect_garbage(1.1).unwrap();
        assert_eq!(report.reclaimed_pbns, 1);
    }

    #[test]
    fn delete_of_nic_buffered_write_drains_the_backlog_first() {
        let mut s = sys();
        let data = chunk(3);
        // hash_batch is 8, so this write stays buffered in the NIC.
        s.write(Lba(4), data.clone()).unwrap();
        assert!(s.nic.pending_len() > 0);
        s.delete(Lba(4)).unwrap();
        // The acked write was processed, then unmapped — not lost, not
        // readable, and its chunk is queued for collection.
        assert_eq!(s.read(Lba(4)).unwrap_err(), FidrError::NotMapped(Lba(4)));
        assert_eq!(s.pending_dead_chunks(), 1);
    }

    #[test]
    fn delete_then_rewrite_of_same_content_resurrects_the_chunk() {
        let mut s = sys();
        s.write(Lba(0), chunk(5)).unwrap();
        s.flush().unwrap();
        s.delete(Lba(0)).unwrap();
        assert_eq!(s.pending_dead_chunks(), 1);
        // A dedup hit on the dead-but-uncollected chunk revives it.
        s.write(Lba(1), chunk(5)).unwrap();
        s.flush().unwrap();
        assert_eq!(s.pending_dead_chunks(), 0);
        assert_eq!(s.collect_garbage(1.1).unwrap().reclaimed_pbns, 0);
        assert_eq!(s.read(Lba(1)).unwrap(), chunk(5).to_vec());
    }

    #[test]
    fn lifecycle_metrics_export_only_after_activity() {
        let mut s = sys();
        s.write(Lba(0), chunk(0)).unwrap();
        s.flush().unwrap();
        let json = s.metrics().to_json();
        assert!(!json.contains("gc."), "no gc.* before any delete/GC");
        assert!(!json.contains("delete."), "no delete.* before any delete");
        s.delete(Lba(0)).unwrap();
        s.collect_garbage(1.1).unwrap();
        let json = s.metrics().to_json();
        assert!(json.contains("\"delete.acked.count\""));
        assert!(json.contains("\"gc.runs.count\""));
        assert!(json.contains("\"gc.reclaimed_bytes\""));
    }

    /// A tiered config whose threshold forces everything cold once the
    /// optimism window passes — every write defers, maximally exercising
    /// the scrubber.
    fn all_cold_tiered() -> TieredDedupConfig {
        TieredDedupConfig {
            policy: TieredPolicyConfig {
                hot_threshold: 1.1, // locality never reaches 110%
                min_observations: 0,
                ..TieredPolicyConfig::default()
            },
            stream_shift: 22,
            scrub_batch: 16,
        }
    }

    #[test]
    fn deferred_dedup_converges_to_inline_reduction() {
        // The same duplicate-heavy sequence through the flat cache and
        // through an everything-cold tiered config: after a flush the
        // dedup outcome (unique/duplicate split) must be identical, and
        // every LBA must read back its content.
        let mut flat = sys();
        let mut tiered = FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            hash_batch: 8,
            tiered: Some(all_cold_tiered()),
            ..FidrConfig::default()
        });
        for i in 0..256u64 {
            let c = chunk(i % 32); // 8x duplication
            flat.write(Lba(i), c.clone()).unwrap();
            tiered.write(Lba(i), c).unwrap();
        }
        flat.flush().unwrap();
        tiered.flush().unwrap();
        assert_eq!(tiered.deferred_pending(), 0, "flush drains the scrubber");
        assert_eq!(
            tiered.stats().unique_chunks,
            flat.stats().unique_chunks,
            "deferred dedup must find the same uniques"
        );
        assert_eq!(
            tiered.stats().duplicate_chunks,
            flat.stats().duplicate_chunks
        );
        for i in 0..256u64 {
            assert_eq!(tiered.read(Lba(i)).unwrap(), chunk(i % 32).to_vec());
        }
        let m = tiered.metrics();
        assert!(m.counter("dedup.deferred.count").unwrap() > 0);
        assert!(m.counter("scrub.dups.count").unwrap() > 0);
        assert_eq!(m.counter("dedup.deferred.pending"), Some(0));
    }

    #[test]
    fn gc_after_deferred_dedup_keeps_canonical_entries() {
        let mut s = FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            hash_batch: 8,
            tiered: Some(all_cold_tiered()),
            ..FidrConfig::default()
        });
        // Two LBAs with the same content, both deferred: the scrub keeps
        // one canonical chunk and retires the other, which GC reclaims —
        // without deleting the canonical table entry they share.
        s.write(Lba(0), chunk(9)).unwrap();
        s.write(Lba(1), chunk(9)).unwrap();
        s.flush().unwrap();
        assert_eq!(s.stats().unique_chunks, 1);
        assert_eq!(s.pending_dead_chunks(), 1, "retired provisional chunk");
        let report = s.collect_garbage(0.0).unwrap();
        assert_eq!(report.reclaimed_pbns, 1);
        // The canonical mapping survived: a new duplicate still hits.
        s.write(Lba(2), chunk(9)).unwrap();
        s.flush().unwrap();
        assert_eq!(s.stats().unique_chunks, 1, "entry survived the GC");
        for lba in 0..3 {
            assert_eq!(s.read(Lba(lba)).unwrap(), chunk(9).to_vec());
        }
    }

    #[test]
    fn overwritten_deferred_write_is_dropped_as_stale() {
        let mut s = FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            hash_batch: 4,
            tiered: Some(TieredDedupConfig {
                scrub_batch: 1 << 20, // never scrub opportunistically
                ..all_cold_tiered()
            }),
            ..FidrConfig::default()
        });
        // Overwrite the same LBA with fresh content before any scrub:
        // the first write's entry goes stale in the queue.
        s.write(Lba(0), chunk(1)).unwrap();
        s.write(Lba(1), chunk(99)).unwrap();
        s.write(Lba(2), chunk(98)).unwrap();
        s.write(Lba(3), chunk(97)).unwrap(); // full batch commits
        s.write(Lba(0), chunk(2)).unwrap();
        s.flush().unwrap();
        let m = s.metrics();
        assert!(m.counter("scrub.stale.count").unwrap() >= 1);
        assert_eq!(s.read(Lba(0)).unwrap(), chunk(2).to_vec());
        // The stale chunk must not have installed a table entry: writing
        // content 1 again is a fresh unique, not a (dangling) dedup hit.
        let uniques = s.stats().unique_chunks;
        s.write(Lba(4), chunk(1)).unwrap();
        s.flush().unwrap();
        assert_eq!(s.stats().unique_chunks, uniques + 1);
        assert_eq!(s.read(Lba(4)).unwrap(), chunk(1).to_vec());
    }

    #[test]
    fn tiered_all_hot_matches_flat_exactly() {
        // hot_threshold 0.0 keeps every stream hot: no write ever defers
        // and the metrics export must be byte-identical to the flat
        // cache (the tier counters are gated on a first deferral).
        let mut flat = sys();
        let mut tiered = FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            hash_batch: 8,
            tiered: Some(TieredDedupConfig {
                policy: TieredPolicyConfig {
                    hot_threshold: 0.0,
                    min_observations: 0,
                    ..TieredPolicyConfig::default()
                },
                ..TieredDedupConfig::default()
            }),
            ..FidrConfig::default()
        });
        for i in 0..200u64 {
            let c = chunk(i % 50);
            flat.write(Lba(i % 96), c.clone()).unwrap();
            tiered.write(Lba(i % 96), c).unwrap();
        }
        flat.flush().unwrap();
        tiered.flush().unwrap();
        assert_eq!(
            flat.metrics().to_json(),
            tiered.metrics().to_json(),
            "all-hot tiered must be byte-identical to flat"
        );
    }
}
