//! Hot-block read cache (paper §8).
//!
//! "For imbalanced read accesses to the data SSDs, we can extend FIDR
//! software and the LBA-PBA table to maintain frequently accessed blocks
//! in main memory." This is that extension: a host-DRAM cache of
//! decompressed chunks with a second-access admission filter, so that
//! one-touch scans cannot wash out the genuinely hot blocks.

use fidr_chunk::Lba;
use std::collections::{HashMap, VecDeque};

/// Counters for the hot-read cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCacheStats {
    /// Reads served from the hot cache.
    pub hits: u64,
    /// Reads that missed.
    pub misses: u64,
    /// Chunks admitted.
    pub admissions: u64,
    /// Chunks evicted.
    pub evictions: u64,
}

impl HotCacheStats {
    /// Hit rate over lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of decompressed chunks with second-touch admission.
///
/// # Examples
///
/// ```
/// use fidr_core::HotReadCache;
/// use fidr_chunk::Lba;
///
/// let mut cache = HotReadCache::new(2);
/// assert!(cache.get(Lba(1)).is_none());
/// cache.offer(Lba(1), vec![1u8; 4096]); // first touch: filtered
/// assert!(cache.get(Lba(1)).is_none());
/// cache.offer(Lba(1), vec![1u8; 4096]); // second touch: admitted
/// assert!(cache.get(Lba(1)).is_some());
/// ```
#[derive(Debug)]
pub struct HotReadCache {
    capacity: usize,
    entries: HashMap<Lba, Vec<u8>>,
    /// LRU order: front = coldest.
    order: VecDeque<Lba>,
    /// One-touch filter: LBAs seen once, awaiting a second access.
    seen_once: HashMap<Lba, ()>,
    seen_order: VecDeque<Lba>,
    stats: HotCacheStats,
}

impl HotReadCache {
    /// Creates a cache holding up to `capacity` chunks (0 disables it).
    pub fn new(capacity: usize) -> Self {
        HotReadCache {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            seen_once: HashMap::new(),
            seen_order: VecDeque::new(),
            stats: HotCacheStats::default(),
        }
    }

    /// Whether the cache is disabled.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Counters so far.
    pub fn stats(&self) -> HotCacheStats {
        self.stats
    }

    /// Looks a block up, refreshing its recency on a hit.
    pub fn get(&mut self, lba: Lba) -> Option<&[u8]> {
        if self.capacity == 0 {
            return None;
        }
        if self.entries.contains_key(&lba) {
            self.stats.hits += 1;
            self.touch(lba);
            self.entries.get(&lba).map(|v| v.as_slice())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Offers a block read from the SSDs for caching. Admitted only on
    /// its second offer (frequency over recency at the admission gate).
    pub fn offer(&mut self, lba: Lba, data: Vec<u8>) {
        if self.capacity == 0 || self.entries.contains_key(&lba) {
            return;
        }
        if self.seen_once.remove(&lba).is_none() {
            // First touch: remember, don't admit. The filter is bounded
            // to 4x the cache capacity.
            self.seen_once.insert(lba, ());
            self.seen_order.push_back(lba);
            while self.seen_once.len() > self.capacity * 4 {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen_once.remove(&old);
                }
            }
            return;
        }
        // Second touch: admit, evicting the coldest if needed.
        while self.entries.len() >= self.capacity {
            if let Some(victim) = self.order.pop_front() {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(lba, data);
        self.order.push_back(lba);
        self.stats.admissions += 1;
    }

    /// Invalidates a block the client overwrote.
    pub fn invalidate(&mut self, lba: Lba) {
        if self.entries.remove(&lba).is_some() {
            self.order.retain(|&l| l != lba);
        }
        self.seen_once.remove(&lba);
    }

    fn touch(&mut self, lba: Lba) {
        self.order.retain(|&l| l != lba);
        self.order.push_back(lba);
    }

    /// Chunks currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(tag: u8) -> Vec<u8> {
        vec![tag; 128]
    }

    #[test]
    fn admission_requires_second_touch() {
        let mut c = HotReadCache::new(4);
        c.offer(Lba(1), data(1));
        assert!(c.get(Lba(1)).is_none());
        c.offer(Lba(1), data(1));
        assert_eq!(c.get(Lba(1)), Some(&data(1)[..]));
    }

    #[test]
    fn scan_does_not_evict_hot_blocks() {
        let mut c = HotReadCache::new(2);
        for _ in 0..2 {
            c.offer(Lba(1), data(1));
            c.offer(Lba(2), data(2));
        }
        assert_eq!(c.len(), 2);
        // A one-touch scan over 100 cold blocks must not displace them.
        for i in 100..200u64 {
            c.offer(Lba(i), data(0));
        }
        assert!(c.get(Lba(1)).is_some());
        assert!(c.get(Lba(2)).is_some());
    }

    #[test]
    fn lru_evicts_coldest_admitted() {
        let mut c = HotReadCache::new(2);
        for tag in [1u64, 2, 3] {
            c.offer(Lba(tag), data(tag as u8));
            c.offer(Lba(tag), data(tag as u8));
        }
        assert!(c.get(Lba(1)).is_none(), "coldest admitted entry evicted");
        assert!(c.get(Lba(2)).is_some());
        assert!(c.get(Lba(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidation_removes_stale_data() {
        let mut c = HotReadCache::new(2);
        c.offer(Lba(1), data(1));
        c.offer(Lba(1), data(1));
        c.invalidate(Lba(1));
        assert!(c.get(Lba(1)).is_none());
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut c = HotReadCache::new(0);
        c.offer(Lba(1), data(1));
        c.offer(Lba(1), data(1));
        assert!(c.get(Lba(1)).is_none());
        assert!(c.is_disabled());
    }
}
