//! # fidr-core
//!
//! The FIDR system itself — the paper's primary contribution (§5–§6): a
//! fine-grain (4-KB) inline data-reduction server built on three ideas:
//!
//! 1. **Hash offloading to the NIC** — unique chunks are detected early,
//!    the CPU/memory-hungry unique-chunk predictor disappears, and only
//!    unique chunks cross PCIe;
//! 2. **In-NIC buffering + PCIe peer-to-peer** — client payloads flow
//!    NIC → Compression Engine → data SSDs without touching host DRAM;
//! 3. **Hybrid table caching** — the Cache HW-Engine indexes the
//!    host-DRAM bucket cache and drives the table SSDs, while the CPU only
//!    scans cached content.
//!
//! [`FidrSystem`] implements the full Figure 6 write/read flows over the
//! workspace substrates, charging every movement to the `fidr-hwsim`
//! ledger. [`CacheMode`] selects the Figure 14 ablation stages, and
//! [`LatencyModel`] reproduces the §7.6 latency comparison.
//!
//! # Examples
//!
//! ```
//! use fidr_core::{CacheMode, FidrConfig, FidrSystem};
//! use fidr_chunk::Lba;
//! use bytes::Bytes;
//!
//! let mut sys = FidrSystem::new(FidrConfig {
//!     cache_mode: CacheMode::HwEngine { update_slots: 4 },
//!     ..FidrConfig::default()
//! });
//! sys.write(Lba(1), Bytes::from(vec![9u8; 4096]))?;
//! sys.flush()?;
//! assert_eq!(sys.read(Lba(1))?[0], 9);
//! # Ok::<(), fidr_core::FidrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod hotcache;
mod latency;
mod system;

pub use backend::{CacheBackend, CacheMode};
pub use fidr_tables::{Snapshot, SnapshotError};
pub use fidr_trace::{TraceConfig, Tracer};
pub use hotcache::{HotCacheStats, HotReadCache};
pub use latency::{LatencyModel, Stage};
pub use system::{FidrConfig, FidrError, FidrSystem, TieredDedupConfig, DEFAULT_STREAM_SHIFT};
