//! Pluggable table-cache backends for the FIDR system.
//!
//! Figures 12 and 14 evaluate FIDR in stages: NIC offload + P2P first with
//! the *software* table cache still on the CPU, then with the Cache
//! HW-Engine (single-update tree), then with concurrent updates. The
//! [`CacheBackend`] enum carries those stages: it dispatches cache accesses
//! to either the software B+ tree (charging tree-indexing and table-SSD
//! stack cycles to the CPU, as in the baseline) or the HW-Engine (charging
//! the FPGA pipeline instead — zero CPU for indexing and table-SSD IO,
//! per §5.5/§6.1).
//!
//! Either backend can be split into hash-prefix shards
//! ([`fidr_cache::ShardedTableCache`]): the multi-worker pipeline gives
//! each worker exclusive ownership of a subset of shards, so concurrent
//! lookups never contend on an index, and the resource charges are
//! replayed on the caller's thread in batch order so the ledger ends up
//! byte-identical to a serial run.
//!
//! Whichever backend runs, [`CacheBackend::export_metrics`] reports it
//! through the same `cache.*`/`hwtree.*` metric names (plus a
//! `cache.hw_engine.enabled` flag), so snapshots from different variants
//! are directly comparable — see `docs/OBSERVABILITY.md`.

use fidr_cache::{
    Access, BPlusTree, CacheIndex, CacheStats, HwTree, HwTreeConfig, HwTreeStats, ScrubGroup,
    ShardedTableCache, TableCache,
};
use fidr_hwsim::{ops, CostParams, CpuTask, Ledger, MemPath, PcieLink};
use fidr_pool::WorkerPool;
use fidr_ssd::{TableSsd, TableSsdError};
use fidr_tables::{Bucket, BUCKET_BYTES};
use std::sync::Mutex;

/// How the Hash-PBN cache index and replacement machinery are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Software B+ tree on the host CPU (the Figure 14 "FIDR NIC+P2P"
    /// stage keeps the baseline's table caching).
    Software,
    /// FIDR Cache HW-Engine with the given number of concurrent update
    /// slots (1 = single-update tree; 4 = the full §5.5.1 optimization).
    HwEngine {
        /// Speculative update slots (1..=4 in the paper).
        update_slots: usize,
    },
}

/// The (possibly sharded) table cache behind one of the two backends.
#[derive(Debug)]
pub enum CacheBackend {
    /// CPU-indexed cache.
    Software(ShardedTableCache<BPlusTree>),
    /// HW-Engine-indexed cache (one engine instance per shard).
    Hw(ShardedTableCache<HwTree>),
}

impl CacheBackend {
    /// Builds a backend with `capacity` total lines split over `shards`
    /// shards in the given mode.
    ///
    /// `hwtree_levels` sets the modelled pipeline depth of the HW tree:
    /// experiments pass the PB-scale depth (14 levels for a ~100-GB
    /// cache, §6.3) even when the functional line count is scaled down,
    /// so that the engine's throughput ceiling reflects the target
    /// deployment. Pass `None` to derive the depth from `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    pub fn new(
        mode: CacheMode,
        capacity: usize,
        hwtree_levels: Option<usize>,
        shards: usize,
    ) -> Self {
        match mode {
            CacheMode::Software => {
                CacheBackend::Software(ShardedTableCache::new(shards, capacity, |_| {
                    BPlusTree::new()
                }))
            }
            CacheMode::HwEngine { update_slots } => {
                let base = match hwtree_levels {
                    Some(levels) => HwTreeConfig::with_levels(levels),
                    None => HwTreeConfig::for_cache_lines(capacity as u64),
                };
                let cfg = HwTreeConfig {
                    update_slots,
                    ..base
                };
                CacheBackend::Hw(ShardedTableCache::new(shards, capacity, |_| {
                    HwTree::new(cfg)
                }))
            }
        }
    }

    /// The mode this backend runs in.
    pub fn mode(&self) -> CacheMode {
        match self {
            CacheBackend::Software(_) => CacheMode::Software,
            CacheBackend::Hw(c) => CacheMode::HwEngine {
                update_slots: c.shard(0).index().config().update_slots,
            },
        }
    }

    /// Cache hit/miss counters, merged across shards.
    pub fn stats(&self) -> CacheStats {
        match self {
            CacheBackend::Software(c) => c.stats(),
            CacheBackend::Hw(c) => c.stats(),
        }
    }

    /// HW-tree counters (merged across shard engines) when the engine is
    /// in use.
    pub fn hwtree_stats(&self) -> Option<HwTreeStats> {
        match self {
            CacheBackend::Software(_) => None,
            CacheBackend::Hw(c) => Some(c.hwtree_stats()),
        }
    }

    /// Wall-clock seconds the engine spent on this run's requests at the
    /// given FPGA-board DRAM bandwidth (slowest shard engine — shards run
    /// concurrently). `None` in software mode.
    pub fn hwtree_elapsed_seconds(&self, fpga_dram_bw: f64) -> Option<f64> {
        match self {
            CacheBackend::Software(_) => None,
            CacheBackend::Hw(c) => Some(c.hwtree_elapsed_seconds(fpga_dram_bw)),
        }
    }

    /// Replays the resource charges of one completed lookup access.
    ///
    /// Split out from [`access`](CacheBackend::access) so the parallel
    /// batch path can run the raw cache accesses on worker threads and
    /// charge the ledger afterwards on the caller's thread, in batch
    /// order — the ledger then evolves exactly as in a serial run.
    fn charge_lookup(hw: bool, access: &Access, ledger: &mut Ledger, cost: &CostParams) {
        if hw {
            // Bucket index batch to the engine and the line location
            // back: 8 bytes each way (§5.6's 200 MB/s at 100 GB/s).
            ledger.charge_pcie(PcieLink::HostCacheEngine, 16);
            if !access.hit {
                // The engine's in-FPGA NVMe queues move the bucket
                // table SSD → host-memory cache content with no CPU.
                ledger.charge_pcie(PcieLink::CacheEngineTableSsd, BUCKET_BYTES as u64);
                ops::dma_to_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
                for _ in 0..access.flushed {
                    ops::dma_from_host(
                        ledger,
                        PcieLink::HostTableSsd,
                        MemPath::TableCache,
                        BUCKET_BYTES as u64,
                    );
                    ledger.charge_pcie(PcieLink::CacheEngineTableSsd, BUCKET_BYTES as u64);
                    ledger.table_ssd_write_bytes += BUCKET_BYTES as u64;
                }
            }
        } else {
            ledger.charge_cpu(CpuTask::TreeIndexing, cost.tree_search_cycles);
            if !access.hit {
                // CPU-driven NVMe stack fetches the bucket into host
                // memory and updates the tree.
                ops::dma_to_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
                ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
                ledger.charge_cpu(CpuTask::TreeIndexing, cost.tree_update_cycles);
                for _ in 0..access.evicted {
                    ledger.charge_cpu(CpuTask::TreeIndexing, cost.tree_update_cycles);
                    ledger.charge_cpu(CpuTask::CacheReplacement, cost.lru_cycles);
                }
                for _ in 0..access.flushed {
                    ops::dma_from_host(
                        ledger,
                        PcieLink::HostTableSsd,
                        MemPath::TableCache,
                        BUCKET_BYTES as u64,
                    );
                    ledger.charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
                    ledger.table_ssd_write_bytes += BUCKET_BYTES as u64;
                }
            }
        }

        // Host-side content scan + LRU in both modes (Observation #4's
        // "best place to run: host").
        ops::cpu_touch(ledger, MemPath::TableCache, BUCKET_BYTES as u64);
        ledger.charge_cpu(CpuTask::TableContentScan, cost.bucket_scan_cycles);
        ledger.charge_cpu(CpuTask::CacheReplacement, cost.lru_cycles);
    }

    /// Accesses `bucket`, charging the mode-appropriate resources.
    ///
    /// In both modes the bucket *content* scan is host-side (DRAM traffic
    /// plus scan cycles) and the LRU is host-side. Index and table-SSD
    /// work costs CPU only in software mode.
    ///
    /// # Errors
    ///
    /// Propagates table-SSD IO failures from the underlying cache; no
    /// resources are charged for the failed access.
    pub fn access(
        &mut self,
        bucket: u64,
        ssd: &mut TableSsd,
        ledger: &mut Ledger,
        cost: &CostParams,
    ) -> Result<Access, TableSsdError> {
        let (hw, access) = match self {
            CacheBackend::Software(c) => (false, c.access(bucket, ssd)?),
            CacheBackend::Hw(c) => (true, c.access(bucket, ssd)?),
        };
        Self::charge_lookup(hw, &access, ledger, cost);
        Ok(access)
    }

    /// Batch interface (Figure 8): the host ships a whole batch of bucket
    /// indexes to the engine and receives cache-line locations back, then
    /// scans each returned line for its fingerprint. The scan happens
    /// per-line *as the location arrives* — a later miss in the same
    /// batch may evict an earlier line, so deferring the scans would read
    /// stale lines. Accounting matches `n` single accesses.
    ///
    /// # Errors
    ///
    /// Stops at the first access whose table-SSD IO fails; earlier
    /// lookups in the batch are not returned (the caller retries the
    /// whole batch — lookups are read-only and idempotent).
    pub fn lookup_batch(
        &mut self,
        requests: &[(u64, fidr_hash::Fingerprint)],
        ssd: &mut TableSsd,
        ledger: &mut Ledger,
        cost: &CostParams,
    ) -> Result<Vec<(Option<fidr_chunk::Pbn>, Access)>, TableSsdError> {
        requests
            .iter()
            .map(|&(bucket, fp)| {
                let access = self.access(bucket, ssd, ledger, cost)?;
                let pbn = self.bucket(access.line).lookup(&fp);
                Ok((pbn, access))
            })
            .collect()
    }

    /// Parallel [`lookup_batch`](CacheBackend::lookup_batch): raw cache
    /// accesses fan out over the persistent worker `pool` — the job with
    /// affinity `k` owns the shards `s` with `s % workers == k` and
    /// serves each shard's requests in batch order, so every shard's
    /// index, LRU and stats evolve exactly as in a serial run (a job
    /// exclusively borrows its shard group, so work-stealing cannot
    /// change results). The shared table SSD sits behind a mutex and is
    /// only locked on shard misses. Results are merged back into batch
    /// order and the ledger charges are replayed serially here, making
    /// the returned lookups *and* every charge byte-identical to the
    /// serial path for any worker count.
    ///
    /// # Errors
    ///
    /// Returns the batch-order-first table-SSD failure. Intended for
    /// fault-free (inert-plan) runs — the serial path must be used when
    /// faults are armed, since injected-fault decisions depend on global
    /// device-call order.
    pub fn lookup_batch_parallel(
        &mut self,
        requests: &[(u64, fidr_hash::Fingerprint)],
        ssd: &mut TableSsd,
        ledger: &mut Ledger,
        cost: &CostParams,
        workers: usize,
        pool: &WorkerPool,
    ) -> Result<Vec<(Option<fidr_chunk::Pbn>, Access)>, TableSsdError> {
        let (hw, slots) = match self {
            CacheBackend::Software(c) => (
                false,
                parallel_shard_lookups(c, requests, ssd, workers, pool),
            ),
            CacheBackend::Hw(c) => (
                true,
                parallel_shard_lookups(c, requests, ssd, workers, pool),
            ),
        };
        let mut out = Vec::with_capacity(requests.len());
        for slot in slots {
            match slot {
                Some(Ok((pbn, access))) => {
                    Self::charge_lookup(hw, &access, ledger, cost);
                    out.push((pbn, access));
                }
                Some(Err(e)) => return Err(e),
                // A shard stops at its first error, which sits at an
                // earlier batch index than any of its skipped requests —
                // so a skipped slot is never reached first.
                None => unreachable!("skipped lookup precedes its shard's error"),
            }
        }
        Ok(out)
    }

    /// Replays the resource charges of one completed slow-tier scrub
    /// group (split from the raw cache work for the same reason as
    /// `charge_lookup`: the parallel path replays charges serially).
    ///
    /// A scrub group never promotes its bucket into the DRAM tier, so the
    /// charges differ from a lookup miss: non-resident groups pay one
    /// bucket read (and one write-back if an entry was inserted) over the
    /// mode-appropriate path, with no LRU or eviction work; every entry
    /// pays the host-side content scan it took to match its fingerprint.
    fn charge_scrub_group(hw: bool, group: &ScrubGroup, ledger: &mut Ledger, cost: &CostParams) {
        if !group.resident {
            if hw {
                ledger.charge_pcie(PcieLink::CacheEngineTableSsd, BUCKET_BYTES as u64);
                ops::dma_to_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
            } else {
                ops::dma_to_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
                ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
            }
        }
        if group.wrote_back {
            if hw {
                ops::dma_from_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.charge_pcie(PcieLink::CacheEngineTableSsd, BUCKET_BYTES as u64);
                ledger.table_ssd_write_bytes += BUCKET_BYTES as u64;
            } else {
                ops::dma_from_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
                ledger.table_ssd_write_bytes += BUCKET_BYTES as u64;
            }
        }
        for _ in &group.results {
            ops::cpu_touch(ledger, MemPath::TableCache, BUCKET_BYTES as u64);
            ledger.charge_cpu(CpuTask::TableContentScan, cost.bucket_scan_cycles);
        }
    }

    /// Applies the deferred-dedup scrub `groups` (one `(bucket, entries)`
    /// pair per table bucket, entries in deferral order) through the slow
    /// tier, charging the mode-appropriate resources per group.
    ///
    /// Resident buckets are patched in place (dirty, flushed later);
    /// non-resident buckets are read-modify-written straight against the
    /// table SSD without being admitted into the DRAM tier.
    ///
    /// # Errors
    ///
    /// Stops at the first group whose table-SSD IO fails; earlier groups
    /// in the batch are applied and charged, later ones are untouched
    /// (scrubbing is idempotent, so the caller may retry the whole
    /// batch).
    pub fn scrub_groups(
        &mut self,
        groups: &[(u64, Vec<(fidr_hash::Fingerprint, fidr_chunk::Pbn)>)],
        ssd: &mut TableSsd,
        ledger: &mut Ledger,
        cost: &CostParams,
    ) -> Result<Vec<ScrubGroup>, TableSsdError> {
        let mut out = Vec::with_capacity(groups.len());
        for (bucket, entries) in groups {
            let (hw, group) = match self {
                CacheBackend::Software(c) => (false, c.scrub_group(*bucket, entries, ssd)?),
                CacheBackend::Hw(c) => (true, c.scrub_group(*bucket, entries, ssd)?),
            };
            Self::charge_scrub_group(hw, &group, ledger, cost);
            out.push(group);
        }
        Ok(out)
    }

    /// Parallel [`scrub_groups`](CacheBackend::scrub_groups): groups fan
    /// out over the persistent worker `pool` with the same shard
    /// ownership rule as
    /// [`lookup_batch_parallel`](CacheBackend::lookup_batch_parallel)
    /// (affinity `k` owns shards `s % workers == k`), and the ledger
    /// charges are replayed serially here in group order — byte-identical
    /// to the serial path for any worker count.
    ///
    /// # Errors
    ///
    /// Returns the group-order-first table-SSD failure. As with parallel
    /// lookups, only for fault-free runs; when a failure is reported,
    /// groups on *other* shards may or may not have been applied, which
    /// is safe because scrubbing is idempotent and the caller retries the
    /// whole batch.
    pub fn scrub_groups_parallel(
        &mut self,
        groups: &[(u64, Vec<(fidr_hash::Fingerprint, fidr_chunk::Pbn)>)],
        ssd: &mut TableSsd,
        ledger: &mut Ledger,
        cost: &CostParams,
        workers: usize,
        pool: &WorkerPool,
    ) -> Result<Vec<ScrubGroup>, TableSsdError> {
        let (hw, slots) = match self {
            CacheBackend::Software(c) => {
                (false, parallel_shard_scrubs(c, groups, ssd, workers, pool))
            }
            CacheBackend::Hw(c) => (true, parallel_shard_scrubs(c, groups, ssd, workers, pool)),
        };
        let mut out = Vec::with_capacity(groups.len());
        for slot in slots {
            match slot {
                Some(Ok(group)) => {
                    Self::charge_scrub_group(hw, &group, ledger, cost);
                    out.push(group);
                }
                Some(Err(e)) => return Err(e),
                // A shard stops at its first error, which sits at an
                // earlier group index than any of its skipped groups.
                None => unreachable!("skipped scrub group precedes its shard's error"),
            }
        }
        Ok(out)
    }

    /// Like [`access`](CacheBackend::access) but for step 10's entry
    /// *update*: the bucket is (usually) already resident from the dedup
    /// lookup, so only the 38-byte entry write touches host memory — no
    /// full-bucket rescan.
    ///
    /// # Errors
    ///
    /// Propagates table-SSD IO failures from the underlying cache.
    pub fn access_for_update(
        &mut self,
        bucket: u64,
        ssd: &mut TableSsd,
        ledger: &mut Ledger,
        cost: &CostParams,
    ) -> Result<Access, TableSsdError> {
        let (hw, access) = match self {
            CacheBackend::Software(c) => (false, c.access(bucket, ssd)?),
            CacheBackend::Hw(c) => (true, c.access(bucket, ssd)?),
        };
        if !access.hit {
            // Rare: the line was evicted between lookup and update.
            if hw {
                ledger.charge_pcie(PcieLink::CacheEngineTableSsd, BUCKET_BYTES as u64);
                ops::dma_to_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
            } else {
                ops::dma_to_host(
                    ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                ledger.charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
                ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
            }
        }
        // The 38-byte entry write plus LRU upkeep.
        ops::cpu_touch(ledger, MemPath::TableCache, 38);
        ledger.charge_cpu(CpuTask::CacheReplacement, cost.lru_cycles);
        Ok(access)
    }

    /// Read access to a cached bucket.
    pub fn bucket(&self, line: u32) -> &Bucket {
        match self {
            CacheBackend::Software(c) => c.bucket(line),
            CacheBackend::Hw(c) => c.bucket(line),
        }
    }

    /// Mutable access (marks the line dirty).
    pub fn bucket_mut(&mut self, line: u32) -> &mut Bucket {
        match self {
            CacheBackend::Software(c) => c.bucket_mut(line),
            CacheBackend::Hw(c) => c.bucket_mut(line),
        }
    }

    /// Flushes all dirty lines to the table SSD.
    ///
    /// # Errors
    ///
    /// Stops at the first failed bucket write; unflushed lines stay dirty
    /// for a later retry.
    pub fn flush_all(&mut self, ssd: &mut TableSsd) -> Result<(), TableSsdError> {
        match self {
            CacheBackend::Software(c) => c.flush_all(ssd),
            CacheBackend::Hw(c) => c.flush_all(ssd),
        }
    }

    /// Exports the `cache.*` counters and lookup-latency histogram and,
    /// when the Cache HW-Engine drives the index, the `hwtree.*` engine
    /// counters (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut fidr_metrics::MetricsSnapshot) {
        match self {
            CacheBackend::Software(c) => {
                c.export_metrics(out);
                out.set_counter("cache.hw_engine.enabled", 0);
            }
            CacheBackend::Hw(c) => {
                c.export_metrics(out);
                out.set_counter("cache.hw_engine.enabled", 1);
            }
        }
        if let Some(t) = self.hwtree_stats() {
            out.set_counter("hwtree.searches.count", t.searches);
            out.set_counter("hwtree.updates.count", t.updates);
            out.set_counter("hwtree.crashes.count", t.crashes);
            out.set_counter("hwtree.cycles.count", t.cycles);
            out.set_counter("hwtree.fpga_dram.bytes", t.fpga_dram_bytes);
            out.set_gauge("hwtree.crash.ratio", t.crash_rate());
        }
    }
}

/// One slot per batch request: `None` if the request was skipped because
/// an earlier request on the same shard failed.
type LookupSlots = Vec<Option<Result<(Option<fidr_chunk::Pbn>, Access), TableSsdError>>>;

/// A single lookup result tagged with its index in the request batch,
/// as produced by one shard-owner worker.
type ShardLookup = (
    usize,
    Result<(Option<fidr_chunk::Pbn>, Access), TableSsdError>,
);

/// Runs the raw (ledger-free) cache accesses of a lookup batch across
/// the persistent worker pool, one job per shard group (`workers` jobs,
/// the job with affinity `k` owning shards `s % workers == k`), and
/// scatters the results back into batch order. Per-shard access order is
/// the batch order restricted to that shard, so shard state evolves
/// identically to a serial pass. The table SSD is shared behind a mutex
/// and only locked on misses (its counters are order-independent sums and
/// concurrent fetches/flushes touch disjoint buckets, one shard each).
fn parallel_shard_lookups<I: CacheIndex + Send>(
    cache: &mut ShardedTableCache<I>,
    requests: &[(u64, fidr_hash::Fingerprint)],
    ssd: &mut TableSsd,
    workers: usize,
    pool: &WorkerPool,
) -> LookupSlots {
    let shard_capacity = cache.shard_capacity() as u32;
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); cache.shard_count()];
    for (i, &(bucket, _)) in requests.iter().enumerate() {
        by_shard[cache.shard_of(bucket)].push(i);
    }
    let workers = workers.max(1).min(cache.shard_count());
    let mut groups: Vec<Vec<(usize, &mut TableCache<I>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (no, shard) in cache.shards_mut().iter_mut().enumerate() {
        groups[no % workers].push((no, shard));
    }
    let shared_ssd = Mutex::new(ssd);

    let mut slots: LookupSlots = Vec::new();
    slots.resize_with(requests.len(), || None);
    let mut gathered: Vec<Vec<ShardLookup>> = (0..groups.len()).map(|_| Vec::new()).collect();
    pool.scope(|s| {
        for ((k, group), results) in groups.drain(..).enumerate().zip(gathered.iter_mut()) {
            let shared_ssd = &shared_ssd;
            let by_shard = &by_shard;
            s.spawn_on(k, move || {
                for (shard_no, shard) in group {
                    for &req_idx in &by_shard[shard_no] {
                        let (bucket, fp) = requests[req_idx];
                        let accessed = match shard.access_cached(bucket) {
                            Some(a) => Ok(a),
                            None => {
                                let mut guard = shared_ssd
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                                shard.access_after_miss(bucket, &mut guard)
                            }
                        };
                        match accessed {
                            Ok(a) => {
                                let pbn = shard.bucket(a.line).lookup(&fp);
                                let global = Access {
                                    line: shard_no as u32 * shard_capacity + a.line,
                                    ..a
                                };
                                results.push((req_idx, Ok((pbn, global))));
                            }
                            Err(e) => {
                                // This shard's remaining requests
                                // are skipped; other shards go on.
                                results.push((req_idx, Err(e)));
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    for (req_idx, result) in gathered.into_iter().flatten() {
        slots[req_idx] = Some(result);
    }
    slots
}

/// One slot per scrub group: `None` if the group was skipped because an
/// earlier group on the same shard failed.
type ScrubSlots = Vec<Option<Result<ScrubGroup, TableSsdError>>>;

/// Runs the raw (ledger-free) slow-tier work of a scrub batch across the
/// persistent worker pool with the same shard-ownership discipline as
/// [`parallel_shard_lookups`]: the job with affinity `k` owns shards
/// `s % workers == k` and applies its groups in batch order, so each
/// shard's resident lines evolve identically to a serial pass. Every
/// non-resident group takes the table-SSD mutex for its read (and
/// write-back); distinct groups touch distinct buckets, so the SSD's
/// order-independent byte counters still sum identically.
fn parallel_shard_scrubs<I: CacheIndex + Send>(
    cache: &mut ShardedTableCache<I>,
    groups: &[(u64, Vec<(fidr_hash::Fingerprint, fidr_chunk::Pbn)>)],
    ssd: &mut TableSsd,
    workers: usize,
    pool: &WorkerPool,
) -> ScrubSlots {
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); cache.shard_count()];
    for (i, &(bucket, _)) in groups.iter().enumerate() {
        by_shard[cache.shard_of(bucket)].push(i);
    }
    let workers = workers.max(1).min(cache.shard_count());
    let mut shard_groups: Vec<Vec<(usize, &mut TableCache<I>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (no, shard) in cache.shards_mut().iter_mut().enumerate() {
        shard_groups[no % workers].push((no, shard));
    }
    let shared_ssd = Mutex::new(ssd);

    let mut slots: ScrubSlots = Vec::new();
    slots.resize_with(groups.len(), || None);
    let mut gathered: Vec<Vec<(usize, Result<ScrubGroup, TableSsdError>)>> =
        (0..shard_groups.len()).map(|_| Vec::new()).collect();
    pool.scope(|s| {
        for ((k, owned), results) in shard_groups.drain(..).enumerate().zip(gathered.iter_mut()) {
            let shared_ssd = &shared_ssd;
            let by_shard = &by_shard;
            s.spawn_on(k, move || {
                for (shard_no, shard) in owned {
                    for &group_idx in &by_shard[shard_no] {
                        let (bucket, entries) = &groups[group_idx];
                        let mut guard = shared_ssd
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        match shard.scrub_group(*bucket, entries, &mut guard) {
                            Ok(g) => results.push((group_idx, Ok(g))),
                            Err(e) => {
                                // This shard's remaining groups are
                                // skipped; other shards go on.
                                results.push((group_idx, Err(e)));
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    for (group_idx, result) in gathered.into_iter().flatten() {
        slots[group_idx] = Some(result);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_hash::Fingerprint;
    use fidr_ssd::QueueLocation;

    #[test]
    fn software_mode_charges_cpu_for_indexing() {
        let mut ssd = TableSsd::new(256, QueueLocation::HostMemory);
        let mut ledger = Ledger::new();
        let cost = CostParams::default();
        let mut b = CacheBackend::new(CacheMode::Software, 8, None, 1);
        b.access(1, &mut ssd, &mut ledger, &cost).unwrap();
        assert!(ledger.cpu_cycles(CpuTask::TreeIndexing) > 0);
        assert!(ledger.cpu_cycles(CpuTask::TableSsdStack) > 0);
    }

    #[test]
    fn hw_mode_charges_no_indexing_cpu() {
        let mut ssd = TableSsd::new(256, QueueLocation::CacheEngine);
        let mut ledger = Ledger::new();
        let cost = CostParams::default();
        let mut b = CacheBackend::new(CacheMode::HwEngine { update_slots: 4 }, 8, None, 1);
        b.access(1, &mut ssd, &mut ledger, &cost).unwrap();
        assert_eq!(ledger.cpu_cycles(CpuTask::TreeIndexing), 0);
        assert_eq!(ledger.cpu_cycles(CpuTask::TableSsdStack), 0);
        // Content scan still costs host cycles and DRAM traffic.
        assert!(ledger.cpu_cycles(CpuTask::TableContentScan) > 0);
        assert!(ledger.mem_bytes(MemPath::TableCache) > 0);
        assert!(b.hwtree_stats().unwrap().searches > 0);
    }

    #[test]
    fn both_modes_agree_functionally() {
        let mut ssd_a = TableSsd::new(64, QueueLocation::HostMemory);
        let mut ssd_b = TableSsd::new(64, QueueLocation::CacheEngine);
        let mut ledger = Ledger::new();
        let cost = CostParams::default();
        let mut sw = CacheBackend::new(CacheMode::Software, 4, None, 1);
        let mut hw = CacheBackend::new(CacheMode::HwEngine { update_slots: 2 }, 4, None, 1);
        for bucket in [1u64, 5, 1, 9, 33, 1, 5, 60, 9] {
            let a = sw.access(bucket, &mut ssd_a, &mut ledger, &cost).unwrap();
            let b = hw.access(bucket, &mut ssd_b, &mut ledger, &cost).unwrap();
            assert_eq!(a.hit, b.hit, "bucket {bucket}");
        }
        assert_eq!(sw.stats().hits, hw.stats().hits);
    }

    /// The parallel batch lookup must return the same results, cache
    /// counters, engine counters and ledger totals as the serial path.
    #[test]
    fn parallel_lookup_matches_serial() {
        let requests: Vec<(u64, Fingerprint)> = (0..256u64)
            .map(|i| {
                let fp = Fingerprint::of(&i.to_le_bytes());
                (fp.bucket_index(1 << 10), fp)
            })
            .collect();
        for mode in [CacheMode::Software, CacheMode::HwEngine { update_slots: 4 }] {
            let queue = match mode {
                CacheMode::Software => QueueLocation::HostMemory,
                CacheMode::HwEngine { .. } => QueueLocation::CacheEngine,
            };
            let cost = CostParams::default();

            let mut serial = CacheBackend::new(mode, 32, None, 4);
            let mut serial_ssd = TableSsd::new(1 << 10, queue);
            let mut serial_ledger = Ledger::new();
            let serial_out = serial
                .lookup_batch(&requests, &mut serial_ssd, &mut serial_ledger, &cost)
                .unwrap();

            let pool = WorkerPool::new(4);
            let mut par = CacheBackend::new(mode, 32, None, 4);
            let mut par_ssd = TableSsd::new(1 << 10, queue);
            let mut par_ledger = Ledger::new();
            let par_out = par
                .lookup_batch_parallel(&requests, &mut par_ssd, &mut par_ledger, &cost, 4, &pool)
                .unwrap();

            assert_eq!(serial_out, par_out, "{mode:?} results");
            assert_eq!(serial.stats(), par.stats(), "{mode:?} cache stats");
            assert_eq!(serial.hwtree_stats(), par.hwtree_stats(), "{mode:?} engine");
            assert_eq!(
                serial_ledger.cpu_total(),
                par_ledger.cpu_total(),
                "{mode:?} cpu"
            );
            assert_eq!(
                serial_ledger.mem_total(),
                par_ledger.mem_total(),
                "{mode:?} mem"
            );
            assert_eq!(
                serial_ledger.table_ssd_read_bytes, par_ledger.table_ssd_read_bytes,
                "{mode:?} table reads"
            );
        }
    }

    /// The parallel scrub path must produce the same group outcomes,
    /// cache counters and ledger totals as the serial path, with some
    /// buckets resident (from prior lookups) and some not.
    #[test]
    fn parallel_scrub_matches_serial() {
        use fidr_chunk::Pbn;
        let warm: Vec<(u64, Fingerprint)> = (0..64u64)
            .map(|i| {
                let fp = Fingerprint::of(&i.to_le_bytes());
                (fp.bucket_index(1 << 10), fp)
            })
            .collect();
        let groups: Vec<(u64, Vec<(Fingerprint, Pbn)>)> = (0..128u64)
            .map(|i| {
                let fp = Fingerprint::of(&(10_000 + i).to_le_bytes());
                (fp.bucket_index(1 << 10), vec![(fp, Pbn(10_000 + i))])
            })
            .collect();
        for mode in [CacheMode::Software, CacheMode::HwEngine { update_slots: 4 }] {
            let queue = match mode {
                CacheMode::Software => QueueLocation::HostMemory,
                CacheMode::HwEngine { .. } => QueueLocation::CacheEngine,
            };
            let cost = CostParams::default();

            let mut serial = CacheBackend::new(mode, 32, None, 4);
            let mut serial_ssd = TableSsd::new(1 << 10, queue);
            let mut serial_ledger = Ledger::new();
            serial
                .lookup_batch(&warm, &mut serial_ssd, &mut serial_ledger, &cost)
                .unwrap();
            let serial_out = serial
                .scrub_groups(&groups, &mut serial_ssd, &mut serial_ledger, &cost)
                .unwrap();

            let pool = WorkerPool::new(4);
            let mut par = CacheBackend::new(mode, 32, None, 4);
            let mut par_ssd = TableSsd::new(1 << 10, queue);
            let mut par_ledger = Ledger::new();
            par.lookup_batch(&warm, &mut par_ssd, &mut par_ledger, &cost)
                .unwrap();
            let par_out = par
                .scrub_groups_parallel(&groups, &mut par_ssd, &mut par_ledger, &cost, 4, &pool)
                .unwrap();

            assert_eq!(serial_out, par_out, "{mode:?} scrub outcomes");
            assert!(
                serial_out.iter().any(|g| g.resident),
                "{mode:?} wants a resident group in the mix"
            );
            assert!(
                serial_out.iter().any(|g| !g.resident),
                "{mode:?} wants a non-resident group in the mix"
            );
            assert_eq!(serial.stats(), par.stats(), "{mode:?} cache stats");
            assert_eq!(
                serial_ledger.cpu_total(),
                par_ledger.cpu_total(),
                "{mode:?} cpu"
            );
            assert_eq!(
                serial_ledger.mem_total(),
                par_ledger.mem_total(),
                "{mode:?} mem"
            );
            assert_eq!(
                serial_ledger.table_ssd_read_bytes, par_ledger.table_ssd_read_bytes,
                "{mode:?} table reads"
            );
            assert_eq!(
                serial_ledger.table_ssd_write_bytes, par_ledger.table_ssd_write_bytes,
                "{mode:?} table writes"
            );
        }
    }
}
