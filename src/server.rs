//! The loopback TCP storage front-end: the serving layer real client
//! traffic enters through.
//!
//! The paper's prototype (§6.2) is a two-machine deployment speaking the
//! simplified read/write/acknowledgment protocol of
//! [`fidr_nic::protocol`]. This module stands that deployment up as a
//! process: a [`Server`] accepts N concurrent client connections,
//! reassembles frames per connection through [`fidr_nic::FramedCodec`],
//! and feeds writes/reads into one shared [`FidrSystem`] behind a
//! bounded in-flight queue (admission blocks — and therefore stops
//! reading from the socket — when the backend falls behind, which is TCP
//! backpressure).
//!
//! Connection hygiene follows the streaming contract of the protocol: a
//! partial frame is never an error (the codec waits for more bytes), but
//! a hard [`fidr_nic::protocol::ProtocolError`] — bad opcode, hostile
//! length field — or a mid-frame disconnect closes *only* the offending
//! connection and counts in `server.frames.rejected.count`. Other
//! clients never stall.
//!
//! Everything the front end does is observable through the `server.*`
//! counters merged into the system's `fidr.metrics.v1` snapshot
//! ([`ServerHandle::metrics`]); per-request `write`/`read` root spans
//! come from the existing tracer when [`FidrConfig::trace`] enables it.
//!
//! # Examples
//!
//! ```no_run
//! use fidr::server::{Server, ServerConfig};
//! use fidr::client::StorageClient;
//! use fidr::chunk::Lba;
//! use bytes::Bytes;
//!
//! let handle = Server::spawn(ServerConfig::default())?;
//! let mut client = StorageClient::connect(handle.local_addr())?;
//! client.write(Lba(0), Bytes::from(vec![7u8; 4096]))?;
//! assert_eq!(client.read(Lba(0))?, vec![7u8; 4096]);
//! drop(client);
//! let metrics = handle.shutdown().expect("clean drain");
//! assert_eq!(metrics.counter("server.frames.rejected.count"), Some(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use bytes::Bytes;
use fidr_core::{FidrConfig, FidrError, FidrSystem};
use fidr_metrics::MetricsSnapshot;
use fidr_nic::protocol::Message;
use fidr_nic::FramedCodec;
use fidr_tables::BUCKET_BYTES;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag; bounds the drain latency of [`ServerHandle::shutdown`].
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Accept-loop poll interval (the listener runs non-blocking so the
/// loop can notice shutdown and connection-limit drain).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Configuration of the TCP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back with
    /// [`ServerHandle::local_addr`]).
    pub addr: SocketAddr,
    /// The storage backend's configuration (enable
    /// [`fidr::trace`](crate::trace) via its `trace` field to get
    /// per-request root spans).
    pub system: FidrConfig,
    /// Bound on frames admitted into the backend but not yet replied to.
    /// When full, connection threads block *before* reading more from
    /// their sockets — the kernel's receive window then pushes back on
    /// clients.
    pub queue_capacity: usize,
    /// Auto-drain: once this many connections have been accepted and all
    /// of them have closed, the server drains and
    /// [`ServerHandle::wait`] returns. `None` serves until
    /// [`ServerHandle::shutdown`].
    pub conns_limit: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            system: FidrConfig::default(),
            queue_capacity: 64,
            conns_limit: None,
        }
    }
}

/// Atomic `server.*` counters shared by every connection thread.
#[derive(Debug, Default)]
struct ServerMetrics {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    connections_closed_clean: AtomicU64,
    connections_closed_error: AtomicU64,
    frames_decoded: AtomicU64,
    frames_rejected: AtomicU64,
    frames_unexpected: AtomicU64,
    rx_bytes: AtomicU64,
    tx_bytes: AtomicU64,
    queue_waits: AtomicU64,
    queue_depth_max: AtomicU64,
    ops_write: AtomicU64,
    ops_read: AtomicU64,
    ops_failed: AtomicU64,
    scrub_idle: AtomicU64,
}

impl ServerMetrics {
    fn export(&self, out: &mut MetricsSnapshot, queue_depth: u64) {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        out.set_counter(
            "server.connections.accepted.count",
            c(&self.connections_accepted),
        );
        out.set_gauge(
            "server.connections.active.count",
            c(&self.connections_active) as f64,
        );
        out.set_counter(
            "server.connections.closed_clean.count",
            c(&self.connections_closed_clean),
        );
        out.set_counter(
            "server.connections.closed_error.count",
            c(&self.connections_closed_error),
        );
        out.set_counter("server.frames.decoded.count", c(&self.frames_decoded));
        out.set_counter("server.frames.rejected.count", c(&self.frames_rejected));
        out.set_counter("server.frames.unexpected.count", c(&self.frames_unexpected));
        out.set_counter("server.rx.bytes", c(&self.rx_bytes));
        out.set_counter("server.tx.bytes", c(&self.tx_bytes));
        out.set_gauge("server.queue.depth.count", queue_depth as f64);
        out.set_counter("server.queue.depth.max", c(&self.queue_depth_max));
        out.set_counter("server.queue.waits.count", c(&self.queue_waits));
        out.set_counter("server.ops.write.count", c(&self.ops_write));
        out.set_counter("server.ops.read.count", c(&self.ops_read));
        out.set_counter("server.ops.failed.count", c(&self.ops_failed));
        out.set_counter("server.scrub.idle.count", c(&self.scrub_idle));
    }
}

/// State shared between the accept loop, connection threads and the
/// handle.
struct Shared {
    system: Mutex<FidrSystem>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    queue_capacity: usize,
    /// Frames admitted into the backend but not yet replied.
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
}

impl Shared {
    /// Blocks until an in-flight slot frees up (the backpressure point),
    /// then claims it.
    fn admit(&self) {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        if *inflight >= self.queue_capacity {
            self.metrics.queue_waits.fetch_add(1, Ordering::Relaxed);
            while *inflight >= self.queue_capacity {
                inflight = self
                    .inflight_cv
                    .wait(inflight)
                    .expect("inflight lock poisoned");
            }
        }
        *inflight += 1;
        self.metrics
            .queue_depth_max
            .fetch_max(*inflight as u64, Ordering::Relaxed);
    }

    fn release(&self) {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        *inflight -= 1;
        drop(inflight);
        self.inflight_cv.notify_one();
    }

    fn queue_depth(&self) -> u64 {
        *self.inflight.lock().expect("inflight lock") as u64
    }

    /// Opportunistic background dedup: whenever a connection read times
    /// out or the accept loop polls with nothing to do, re-process a
    /// bounded slice of the deferred cold-stream writes, so the queue
    /// drains during traffic lulls instead of piling up for the final
    /// flush. `try_lock` only — idle maintenance must never delay a live
    /// request; a scrub error is swallowed here and resurfaces on the
    /// next flush. A no-op unless [`FidrConfig::tiered`] is enabled.
    fn idle_scrub(&self) {
        const IDLE_SCRUB_LIMIT: usize = 256;
        if let Ok(mut system) = self.system.try_lock() {
            if system.deferred_pending() > 0 {
                if let Ok(n) = system.scrub_deferred(IDLE_SCRUB_LIMIT) {
                    self.metrics
                        .scrub_idle
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The serving front end. [`Server::spawn`] binds, starts the accept
/// loop and returns a [`ServerHandle`].
pub struct Server;

/// Handle to a running [`Server`]: address, live metrics, and the two
/// ways it ends ([`shutdown`](ServerHandle::shutdown) /
/// [`wait`](ServerHandle::wait)).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept loop and returns the handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            system: Mutex::new(FidrSystem::new(cfg.system.clone())),
            metrics: ServerMetrics::default(),
            shutdown: AtomicBool::new(false),
            queue_capacity: cfg.queue_capacity.max(1),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let conns_limit = cfg.conns_limit;
        let accept_thread =
            std::thread::spawn(move || accept_loop(&accept_shared, &listener, conns_limit));
        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Accepts connections until shutdown (or until `conns_limit`
/// connections were accepted *and* all of them finished). Returns the
/// connection threads for the handle to join.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns_limit: Option<u64>,
) -> Vec<JoinHandle<()>> {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let accepted = shared.metrics.connections_accepted.load(Ordering::Relaxed);
        if let Some(limit) = conns_limit {
            if accepted >= limit {
                // Past the limit: drain instead of accepting more.
                if shared.metrics.connections_active.load(Ordering::Relaxed) == 0 {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .connections_active
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                conn_threads.push(std::thread::spawn(move || {
                    serve_connection(&conn_shared, stream);
                    conn_shared
                        .metrics
                        .connections_active
                        .fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                shared.idle_scrub();
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (peer reset mid-handshake) are not
            // fatal to the server.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    conn_threads
}

/// Why one connection ended.
enum ConnEnd {
    /// Peer closed cleanly at a frame boundary.
    Clean,
    /// Protocol violation, mid-frame disconnect, IO error or backend
    /// failure.
    Error,
}

/// Runs one connection to completion: read → reassemble → serve → reply.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let end = serve_connection_inner(shared, &mut stream);
    match end {
        ConnEnd::Clean => shared
            .metrics
            .connections_closed_clean
            .fetch_add(1, Ordering::Relaxed),
        ConnEnd::Error => shared
            .metrics
            .connections_closed_error
            .fetch_add(1, Ordering::Relaxed),
    };
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_connection_inner(shared: &Arc<Shared>, stream: &mut TcpStream) -> ConnEnd {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        return ConnEnd::Error;
    }
    let mut codec = FramedCodec::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                // EOF. A partial frame left in the codec means the peer
                // died mid-frame: that frame is lost for good.
                if codec.pending_bytes() > 0 {
                    shared
                        .metrics
                        .frames_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return ConnEnd::Error;
                }
                return ConnEnd::Clean;
            }
            Ok(n) => {
                shared
                    .metrics
                    .rx_bytes
                    .fetch_add(n as u64, Ordering::Relaxed);
                codec.feed(&buf[..n]);
                loop {
                    match codec.next_frame() {
                        Ok(Some(msg)) => {
                            shared
                                .metrics
                                .frames_decoded
                                .fetch_add(1, Ordering::Relaxed);
                            if !serve_frame(shared, stream, msg) {
                                return ConnEnd::Error;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Bad opcode / hostile length: the stream has
                            // no recoverable frame boundary. Close only
                            // this connection.
                            shared
                                .metrics
                                .frames_rejected
                                .fetch_add(1, Ordering::Relaxed);
                            return ConnEnd::Error;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    // Drain: the peer went quiet and the server is
                    // leaving; no frame is in flight at this point.
                    return ConnEnd::Clean;
                }
                // The peer is between requests: use the lull for
                // deferred-dedup scrubbing.
                shared.idle_scrub();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ConnEnd::Error,
        }
    }
}

/// Admits one decoded frame through the bounded queue, applies it to the
/// shared system and writes the reply. Returns `false` when the
/// connection must close (semantic violation, backend error, dead peer).
fn serve_frame(shared: &Arc<Shared>, stream: &mut TcpStream, msg: Message) -> bool {
    let reply = match msg {
        Message::Write { lba, data } => {
            shared.admit();
            let outcome = apply_write(shared, lba, data);
            shared.release();
            match outcome {
                Ok(()) => {
                    shared.metrics.ops_write.fetch_add(1, Ordering::Relaxed);
                    Message::WriteAck { lba }
                }
                Err(_) => {
                    shared.metrics.ops_failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        Message::Read { lba } => {
            shared.admit();
            let outcome = {
                let mut system = shared.system.lock().expect("system lock");
                system.read(lba)
            };
            shared.release();
            match outcome {
                Ok(data) => {
                    shared.metrics.ops_read.fetch_add(1, Ordering::Relaxed);
                    Message::ReadReply {
                        lba,
                        data: Bytes::from(data),
                    }
                }
                Err(_) => {
                    shared.metrics.ops_failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        // Server-only opcodes arriving *at* the server are a semantic
        // violation even though they framed correctly.
        Message::WriteAck { .. } | Message::ReadReply { .. } => {
            shared
                .metrics
                .frames_unexpected
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
    };
    let frame = match reply.encode() {
        Ok(frame) => frame,
        // Unreachable for replies we build (reads return one chunk), but
        // a protocol bound must not panic the connection thread.
        Err(_) => return false,
    };
    if stream.write_all(&frame).is_err() {
        return false;
    }
    shared
        .metrics
        .tx_bytes
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    true
}

/// Applies one write frame: a single 4-KiB chunk goes through
/// [`FidrSystem::write`]; a larger multiple-of-4-KiB payload is chunked
/// by [`FidrSystem::write_request`]; anything ragged is rejected.
fn apply_write(shared: &Arc<Shared>, lba: fidr_chunk::Lba, data: Bytes) -> Result<(), FidrError> {
    let mut system = shared.system.lock().expect("system lock");
    if data.len() == BUCKET_BYTES {
        system.write(lba, data)
    } else {
        system.write_request(lba, data).map(|_chunks| ())
    }
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live `fidr.metrics.v1` snapshot: the backend's full pipeline
    /// metrics plus the `server.*` counters and — serve opts in, the
    /// deterministic core export does not — the `pool.*` wall-clock
    /// counters of the persistent worker pool.
    pub fn metrics(&self) -> MetricsSnapshot {
        let system = self.shared.system.lock().expect("system lock");
        let mut out = system.metrics();
        system.export_pool_metrics(&mut out);
        drop(system);
        self.shared
            .metrics
            .export(&mut out, self.shared.queue_depth());
        out
    }

    /// Graceful shutdown: stop accepting, let every connection finish
    /// its in-flight frame and close, flush the backend (drain the NIC,
    /// seal the open container, flush dirty cache lines) and return the
    /// final metrics snapshot.
    ///
    /// # Errors
    ///
    /// Propagates a backend flush failure (the snapshot is still
    /// retrievable via [`ServerHandle::metrics`] afterwards).
    pub fn shutdown(mut self) -> Result<MetricsSnapshot, FidrError> {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.drain()
    }

    /// Blocks until the configured
    /// [`conns_limit`](ServerConfig::conns_limit) auto-drain triggers
    /// (or a [`shutdown`](ServerHandle::shutdown) from another handle —
    /// with no limit and no shutdown this never returns), then drains
    /// exactly like [`shutdown`](ServerHandle::shutdown).
    ///
    /// # Errors
    ///
    /// Propagates a backend flush failure.
    pub fn wait(mut self) -> Result<MetricsSnapshot, FidrError> {
        self.drain()
    }

    fn drain(&mut self) -> Result<MetricsSnapshot, FidrError> {
        if let Some(accept) = self.accept_thread.take() {
            let conn_threads = accept.join().expect("accept thread panicked");
            // The accept loop has stopped; make sure lingering
            // connections see the flag and wind down.
            self.shared.shutdown.store(true, Ordering::Relaxed);
            for t in conn_threads {
                t.join().expect("connection thread panicked");
            }
        }
        let mut system = self.shared.system.lock().expect("system lock");
        system.flush()?;
        let mut out = system.metrics();
        system.export_pool_metrics(&mut out);
        drop(system);
        self.shared
            .metrics
            .export(&mut out, self.shared.queue_depth());
        Ok(out)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle must not leak the accept loop or strand
        // connection threads blocked on reads.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept_thread.take() {
            if let Ok(conn_threads) = accept.join() {
                for t in conn_threads {
                    let _ = t.join();
                }
            }
        }
    }
}
