//! The loopback TCP storage front-end: the serving layer real client
//! traffic enters through.
//!
//! The paper's prototype (§6.2) is a two-machine deployment speaking the
//! simplified read/write/acknowledgment protocol of
//! [`fidr_nic::protocol`]. This module stands that deployment up as a
//! process: a [`Server`] accepts N concurrent client connections,
//! reassembles frames per connection through [`fidr_nic::FramedCodec`],
//! and feeds writes/reads into one shared [`FidrSystem`] behind a
//! bounded in-flight queue (admission blocks — and therefore stops
//! reading from the socket — when the backend falls behind, which is TCP
//! backpressure).
//!
//! Connection hygiene follows the streaming contract of the protocol: a
//! partial frame is never an error (the codec waits for more bytes), but
//! a hard [`fidr_nic::protocol::ProtocolError`] — bad opcode, hostile
//! length field — or a mid-frame disconnect closes *only* the offending
//! connection and counts in `server.frames.rejected.count`. Other
//! clients never stall.
//!
//! Everything the front end does is observable through the `server.*`
//! counters merged into the system's `fidr.metrics.v1` snapshot
//! ([`ServerHandle::metrics`]); per-request `write`/`read` root spans
//! come from the existing tracer when [`FidrConfig::trace`] enables it.
//!
//! # Examples
//!
//! ```no_run
//! use fidr::server::{Server, ServerConfig};
//! use fidr::client::StorageClient;
//! use fidr::chunk::Lba;
//! use bytes::Bytes;
//!
//! let handle = Server::spawn(ServerConfig::default())?;
//! let mut client = StorageClient::connect(handle.local_addr())?;
//! client.write(Lba(0), Bytes::from(vec![7u8; 4096]))?;
//! assert_eq!(client.read(Lba(0))?, vec![7u8; 4096]);
//! drop(client);
//! let metrics = handle.shutdown().expect("clean drain");
//! assert_eq!(metrics.counter("server.frames.rejected.count"), Some(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use bytes::Bytes;
use fidr_core::{FidrConfig, FidrError, FidrSystem, DEFAULT_STREAM_SHIFT};
use fidr_metrics::{
    counter_delta, rate_per_sec, ratio, to_prometheus_text, Histogram, MetricsSnapshot,
    WindowedHistogram, TIMESERIES_SCHEMA_ID,
};
use fidr_nic::protocol::{Message, ShardMapAction, StatsFormat};
use fidr_nic::{FramedCodec, ShardRouter};
use fidr_tables::BUCKET_BYTES;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag; bounds the drain latency of [`ServerHandle::shutdown`].
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Accept-loop poll interval (the listener runs non-blocking so the
/// loop can notice shutdown and connection-limit drain).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Time-series samples retained by the sampler ring (oldest dropped).
/// At the default 1 s cadence this is four minutes of history.
const SAMPLE_RING: usize = 240;

/// Distinct stream ids tracked individually; traffic on streams beyond
/// this spills into the `other` rollup bucket so a high-entropy LBA
/// space cannot grow server memory without bound.
const MAX_TRACKED_STREAMS: usize = 64;

/// Slow-request exemplars retained (oldest dropped).
const EXEMPLAR_RING: usize = 8;

/// Recent tracer spans attached to each exemplar.
const EXEMPLAR_SPANS: usize = 8;

/// Sampler rotations spanned by the windowed latency histogram: the
/// live percentiles cover the last `LATENCY_WINDOWS × sample_ms`.
const LATENCY_WINDOWS: usize = 8;

/// Requests observed before the slow-exemplar threshold arms — a p99
/// over a handful of samples is noise, not a threshold.
const P99_ARM_COUNT: u64 = 32;

/// Once armed, the p99 threshold is recomputed every this many
/// requests (an atomic load on the hot path, a percentile walk only
/// here).
const P99_REFRESH: u64 = 64;

/// Configuration of the TCP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back with
    /// [`ServerHandle::local_addr`]).
    pub addr: SocketAddr,
    /// The storage backend's configuration (enable
    /// [`fidr::trace`](crate::trace) via its `trace` field to get
    /// per-request root spans).
    pub system: FidrConfig,
    /// Bound on frames admitted into the backend but not yet replied to.
    /// When full, connection threads block *before* reading more from
    /// their sockets — the kernel's receive window then pushes back on
    /// clients.
    pub queue_capacity: usize,
    /// Auto-drain: once this many connections have been accepted and all
    /// of them have closed, the server drains and
    /// [`ServerHandle::wait`] returns. `None` serves until
    /// [`ServerHandle::shutdown`].
    pub conns_limit: Option<u64>,
    /// Telemetry sampler cadence in milliseconds; `0` disables the
    /// sampler thread entirely (scrapes then return an empty sample
    /// ring but live totals still work). The sampler is read-only over
    /// the merged metrics, so the drain-time `fidr.metrics.v1` export
    /// is byte-identical whether it runs or not.
    pub sample_ms: u64,
    /// Stream id = `lba >> stream_shift` for the per-stream rollups;
    /// [`fidr_core::DEFAULT_STREAM_SHIFT`] keeps it in lockstep with
    /// [`fidr_core::TieredDedupConfig::stream_shift`] so `fidr top` and
    /// the tiered admission policy agree on what a stream is.
    pub stream_shift: u32,
    /// Streams reported individually by a scrape; the rest (and any
    /// traffic past the 64-stream tracking cap) aggregate into `other`.
    pub top_streams: usize,
    /// This node's stable identity in a cluster shard map; a
    /// standalone server can leave the 0 default. Used to tell "mine"
    /// from "must rehome" when a [`Message::ShardMapRequest`] installs
    /// a new map.
    pub node_id: u64,
    /// Garbage collection cadence: run a collection pass after every
    /// this many acked deletes, and opportunistically during traffic
    /// lulls whenever dead chunks are pending (the same idle hook the
    /// deferred-dedup scrubber uses). `0` disables server-driven GC —
    /// deletes still unmap, but space comes back only via an explicit
    /// [`fidr_core::FidrSystem::collect_garbage`] call.
    pub gc_every: u64,
    /// Live-fraction threshold below which a GC pass compacts a
    /// container (see [`fidr_core::FidrSystem::collect_garbage`]).
    pub gc_threshold: f64,
    /// Test hook: injected wall-clock latency on the write path, for
    /// exercising slow-request exemplar capture deterministically.
    pub stall: Option<StallFault>,
    /// Test hook: injected read-path corruption, for exercising the
    /// client's verification (and its non-zero exit) deterministically.
    pub corrupt: Option<CorruptFault>,
}

/// Injected wall-clock latency fault: every `every`-th write sleeps
/// `millis` before entering the backend. A telemetry test hook — the
/// modelled clock and the deterministic metrics export never see it.
#[derive(Debug, Clone, Copy)]
pub struct StallFault {
    /// Stall cadence (every Nth write; 0 disables).
    pub every: u64,
    /// Stall duration in milliseconds.
    pub millis: u64,
}

/// Injected read-path corruption fault: every `every`-th read reply has
/// its first payload byte flipped *after* the backend served it, as a
/// bit-rotted wire or device would. The backend's own state stays
/// intact; only the reply bytes lie. A test hook for proving client
/// verification fails loudly.
#[derive(Debug, Clone, Copy)]
pub struct CorruptFault {
    /// Corruption cadence (every Nth read; 0 disables).
    pub every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            system: FidrConfig::default(),
            queue_capacity: 64,
            conns_limit: None,
            sample_ms: 1000,
            stream_shift: DEFAULT_STREAM_SHIFT,
            top_streams: 8,
            node_id: 0,
            gc_every: 0,
            gc_threshold: 0.5,
            stall: None,
            corrupt: None,
        }
    }
}

/// Atomic `server.*` counters shared by every connection thread.
#[derive(Debug, Default)]
struct ServerMetrics {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    connections_closed_clean: AtomicU64,
    connections_closed_error: AtomicU64,
    frames_decoded: AtomicU64,
    frames_rejected: AtomicU64,
    frames_unexpected: AtomicU64,
    rx_bytes: AtomicU64,
    tx_bytes: AtomicU64,
    queue_waits: AtomicU64,
    queue_depth_max: AtomicU64,
    ops_write: AtomicU64,
    ops_read: AtomicU64,
    ops_delete: AtomicU64,
    ops_stats: AtomicU64,
    ops_shardmap: AtomicU64,
    ops_failed: AtomicU64,
    scrub_idle: AtomicU64,
    gc_passes: AtomicU64,
    shard_rehome: AtomicU64,
    shard_reclaimed: AtomicU64,
}

impl ServerMetrics {
    fn export(&self, out: &mut MetricsSnapshot, queue_depth: u64) {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        out.set_counter(
            "server.connections.accepted.count",
            c(&self.connections_accepted),
        );
        out.set_gauge(
            "server.connections.active.count",
            c(&self.connections_active) as f64,
        );
        out.set_counter(
            "server.connections.closed_clean.count",
            c(&self.connections_closed_clean),
        );
        out.set_counter(
            "server.connections.closed_error.count",
            c(&self.connections_closed_error),
        );
        out.set_counter("server.frames.decoded.count", c(&self.frames_decoded));
        out.set_counter("server.frames.rejected.count", c(&self.frames_rejected));
        out.set_counter("server.frames.unexpected.count", c(&self.frames_unexpected));
        out.set_counter("server.rx.bytes", c(&self.rx_bytes));
        out.set_counter("server.tx.bytes", c(&self.tx_bytes));
        out.set_gauge("server.queue.depth.count", queue_depth as f64);
        // A high-watermark is a level, not an event count: gauge.
        out.set_gauge("server.queue.depth.max", c(&self.queue_depth_max) as f64);
        out.set_counter("server.queue.waits.count", c(&self.queue_waits));
        out.set_counter("server.ops.write.count", c(&self.ops_write));
        out.set_counter("server.ops.read.count", c(&self.ops_read));
        out.set_counter("server.ops.delete.count", c(&self.ops_delete));
        out.set_counter("server.ops.stats.count", c(&self.ops_stats));
        out.set_counter("server.ops.shardmap.count", c(&self.ops_shardmap));
        out.set_counter("server.ops.failed.count", c(&self.ops_failed));
        out.set_counter("server.scrub.idle.count", c(&self.scrub_idle));
        out.set_counter("server.gc.passes.count", c(&self.gc_passes));
        out.set_counter("server.shard.rehome.count", c(&self.shard_rehome));
        out.set_counter("server.shard.reclaimed.count", c(&self.shard_reclaimed));
    }
}

/// Per-stream traffic rollup (stream id = `lba >> stream_shift`).
#[derive(Debug, Clone, Copy, Default)]
struct StreamStats {
    writes: u64,
    reads: u64,
    deletes: u64,
    bytes: u64,
}

impl StreamStats {
    fn absorb(&mut self, other: StreamStats) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.deletes += other.deletes;
        self.bytes += other.bytes;
    }

    fn ops(&self) -> u64 {
        self.writes + self.reads + self.deletes
    }
}

/// One retained slow request: what `server.slow.exemplars` exports.
#[derive(Debug, Clone)]
struct Exemplar {
    seq: u64,
    op: &'static str,
    lba: u64,
    latency_ns: u64,
    threshold_ns: u64,
    /// `(stage name, modelled duration ns)` of the request's most
    /// recent tracer spans; empty when tracing is disabled.
    spans: Vec<(&'static str, u64)>,
}

/// One sampler tick: deltas of the merged counters over `dt_ms`, plus
/// the windowed rates `fidr top` renders. All wall-clock derived, so
/// this lives only in scrape output, never the drain export.
#[derive(Debug, Clone, Copy)]
struct TimeSample {
    seq: u64,
    /// Milliseconds since the server started.
    t_ms: u64,
    dt_ms: u64,
    writes: u64,
    reads: u64,
    rx_bytes: u64,
    tx_bytes: u64,
    ops_per_sec: f64,
    gbps: f64,
    hit_ratio: f64,
    queue_depth: u64,
    dedup_ratio: f64,
    deferred: u64,
}

/// Mutable telemetry state behind one mutex, separate from the system
/// lock (lock order where both are needed: system first, telemetry
/// second).
struct TelemetryInner {
    started: Instant,
    /// Snapshot the last tick diffed against.
    prev: Option<MetricsSnapshot>,
    last_ms: u64,
    seq: u64,
    samples: VecDeque<TimeSample>,
    streams: BTreeMap<u64, StreamStats>,
    /// Rollup of streams past [`MAX_TRACKED_STREAMS`].
    overflow: StreamStats,
    /// Lifetime wall-clock request latency (arms the p99 threshold).
    latency: Histogram,
    /// Latency over the last [`LATENCY_WINDOWS`] sampler ticks.
    window_latency: WindowedHistogram,
    exemplars: VecDeque<Exemplar>,
    exemplar_seq: u64,
}

/// The live telemetry plane: sampler ring + per-stream rollups + slow
/// exemplars. Strictly additive — it reads the merged metrics and
/// feeds only the scrape outputs, so the deterministic drain export
/// never sees it.
struct Telemetry {
    sample_ms: u64,
    stream_shift: u32,
    top_streams: usize,
    inner: Mutex<TelemetryInner>,
    /// Cached slow-request threshold in ns; 0 until armed (see
    /// [`P99_ARM_COUNT`]). Hot-path reads are one relaxed load.
    p99_threshold_ns: AtomicU64,
}

impl Telemetry {
    fn new(cfg: &ServerConfig) -> Self {
        Telemetry {
            sample_ms: cfg.sample_ms,
            stream_shift: cfg.stream_shift,
            top_streams: cfg.top_streams.max(1),
            inner: Mutex::new(TelemetryInner {
                started: Instant::now(),
                prev: None,
                last_ms: 0,
                seq: 0,
                samples: VecDeque::new(),
                streams: BTreeMap::new(),
                overflow: StreamStats::default(),
                latency: Histogram::new(),
                window_latency: WindowedHistogram::new(LATENCY_WINDOWS),
                exemplars: VecDeque::new(),
                exemplar_seq: 0,
            }),
            p99_threshold_ns: AtomicU64::new(0),
        }
    }
}

impl TelemetryInner {
    /// The `top_streams` busiest streams plus an `other` rollup of
    /// everything else (untracked overflow included). `other` appears
    /// only when it saw traffic.
    fn top_streams(&self, k: usize) -> (Vec<(u64, StreamStats)>, StreamStats) {
        let mut all: Vec<(u64, StreamStats)> = self.streams.iter().map(|(k, v)| (*k, *v)).collect();
        all.sort_by(|a, b| b.1.ops().cmp(&a.1.ops()).then(a.0.cmp(&b.0)));
        let mut other = self.overflow;
        for (_, s) in all.iter().skip(k) {
            other.absorb(*s);
        }
        all.truncate(k);
        (all, other)
    }
}

/// State shared between the accept loop, connection threads, the
/// sampler and the handle.
struct Shared {
    system: Mutex<FidrSystem>,
    metrics: ServerMetrics,
    telemetry: Telemetry,
    stall: Option<StallFault>,
    stall_seq: AtomicU64,
    corrupt: Option<CorruptFault>,
    corrupt_seq: AtomicU64,
    shutdown: AtomicBool,
    queue_capacity: usize,
    /// GC cadence in acked deletes (0 = server-driven GC disabled).
    gc_every: u64,
    /// Live-fraction threshold handed to `collect_garbage`.
    gc_threshold: f64,
    /// Acked deletes since the last cadence-triggered GC pass.
    deletes_since_gc: AtomicU64,
    /// This node's id in the cluster map (0 for a standalone server).
    node_id: u64,
    /// The cluster shard map this node last installed; `None` until a
    /// router pushes one (standalone servers never hold one). Lock order
    /// where the system lock is also needed: system first, map second.
    shard_map: Mutex<Option<ShardRouter>>,
    /// Frames admitted into the backend but not yet replied.
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
}

impl Shared {
    /// Blocks until an in-flight slot frees up (the backpressure point),
    /// then claims it.
    fn admit(&self) {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        if *inflight >= self.queue_capacity {
            self.metrics.queue_waits.fetch_add(1, Ordering::Relaxed);
            while *inflight >= self.queue_capacity {
                inflight = self
                    .inflight_cv
                    .wait(inflight)
                    .expect("inflight lock poisoned");
            }
        }
        *inflight += 1;
        self.metrics
            .queue_depth_max
            .fetch_max(*inflight as u64, Ordering::Relaxed);
    }

    fn release(&self) {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        *inflight -= 1;
        drop(inflight);
        self.inflight_cv.notify_one();
    }

    fn queue_depth(&self) -> u64 {
        *self.inflight.lock().expect("inflight lock") as u64
    }

    /// Opportunistic background dedup: whenever a connection read times
    /// out or the accept loop polls with nothing to do, re-process a
    /// bounded slice of the deferred cold-stream writes, so the queue
    /// drains during traffic lulls instead of piling up for the final
    /// flush. `try_lock` only — idle maintenance must never delay a live
    /// request; a scrub error is swallowed here and resurfaces on the
    /// next flush. A no-op unless [`FidrConfig::tiered`] is enabled.
    fn idle_scrub(&self) {
        const IDLE_SCRUB_LIMIT: usize = 256;
        if let Ok(mut system) = self.system.try_lock() {
            if system.deferred_pending() > 0 {
                if let Ok(n) = system.scrub_deferred(IDLE_SCRUB_LIMIT) {
                    self.metrics
                        .scrub_idle
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
            }
            // Same lull, same rules, for garbage collection: reclaim
            // dead chunks while nobody is waiting. Errors are swallowed
            // here (a failed pass leaves the queue intact) and resurface
            // on the next explicit collection or read.
            if self.gc_every > 0 && system.pending_dead_chunks() > 0 {
                self.deletes_since_gc.store(0, Ordering::Relaxed);
                if system.collect_garbage(self.gc_threshold).is_ok() {
                    self.metrics.gc_passes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Cadence-triggered GC: after every [`ServerConfig::gc_every`]
    /// acked deletes, run a collection pass inline (the delete that
    /// tripped the cadence pays for the pass — deterministic pressure
    /// relief even when the server is never idle).
    fn maybe_gc(&self) {
        if self.gc_every == 0 {
            return;
        }
        let n = self.deletes_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.gc_every {
            self.deletes_since_gc.store(0, Ordering::Relaxed);
            let mut system = self.system.lock().expect("system lock");
            if system.collect_garbage(self.gc_threshold).is_ok() {
                self.metrics.gc_passes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The full merged snapshot: backend pipeline metrics + `pool.*`
    /// wall-clock counters + `server.*` counters + per-stream rollups.
    /// The one shape both the drain export and the sampler observe.
    fn merged_metrics(&self) -> MetricsSnapshot {
        let system = self.system.lock().expect("system lock");
        let mut out = system.metrics();
        system.export_pool_metrics(&mut out);
        drop(system);
        self.metrics.export(&mut out, self.queue_depth());
        self.export_streams(&mut out);
        out
    }

    /// Per-stream (per-tenant) `server.stream.<id>.*` counters. Pure
    /// event counts keyed by a BTreeMap, so the export is deterministic
    /// — byte-stable across worker counts — as long as at most
    /// [`MAX_TRACKED_STREAMS`] streams appear (beyond that, which
    /// streams land in `other` depends on arrival order).
    fn export_streams(&self, out: &mut MetricsSnapshot) {
        let t = self.telemetry.inner.lock().expect("telemetry lock");
        for (id, s) in &t.streams {
            out.set_counter(&format!("server.stream.{id}.writes.count"), s.writes);
            out.set_counter(&format!("server.stream.{id}.reads.count"), s.reads);
            // Gated so delete-free workloads export byte-identically to
            // pre-lifecycle revisions.
            if s.deletes > 0 {
                out.set_counter(&format!("server.stream.{id}.deletes.count"), s.deletes);
            }
            out.set_counter(&format!("server.stream.{id}.bytes"), s.bytes);
        }
        if t.overflow.ops() > 0 {
            out.set_counter("server.stream.other.writes.count", t.overflow.writes);
            out.set_counter("server.stream.other.reads.count", t.overflow.reads);
            if t.overflow.deletes > 0 {
                out.set_counter("server.stream.other.deletes.count", t.overflow.deletes);
            }
            out.set_counter("server.stream.other.bytes", t.overflow.bytes);
        }
    }

    /// Test hook: sleeps on every `every`-th write when a
    /// [`StallFault`] is armed.
    fn maybe_stall(&self) {
        if let Some(stall) = self.stall {
            if stall.every > 0 {
                let n = self.stall_seq.fetch_add(1, Ordering::Relaxed) + 1;
                if n.is_multiple_of(stall.every) {
                    std::thread::sleep(Duration::from_millis(stall.millis));
                }
            }
        }
    }

    /// Test hook: flips the first byte of every `every`-th read reply
    /// when a [`CorruptFault`] is armed.
    fn maybe_corrupt(&self, data: &mut [u8]) {
        if let Some(corrupt) = self.corrupt {
            if corrupt.every > 0 && !data.is_empty() {
                let n = self.corrupt_seq.fetch_add(1, Ordering::Relaxed) + 1;
                if n.is_multiple_of(corrupt.every) {
                    data[0] ^= 0xff;
                }
            }
        }
    }

    /// Folds one served request into the telemetry plane: per-stream
    /// rollup, wall-clock latency, and — past the armed p99 threshold —
    /// a slow-request exemplar with the request's freshest tracer spans.
    fn record_op(&self, op: &'static str, lba: u64, bytes: u64, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let threshold = self.telemetry.p99_threshold_ns.load(Ordering::Relaxed);
        let slow = threshold > 0 && ns > threshold;
        // Span capture needs the system lock; take it *before* the
        // telemetry lock (the fixed lock order) and only on the rare
        // slow path.
        let spans = if slow {
            let system = self.system.lock().expect("system lock");
            system
                .tracer()
                .recent(EXEMPLAR_SPANS)
                .iter()
                .map(|s| (s.name, s.duration_ns()))
                .collect()
        } else {
            Vec::new()
        };
        let stream = lba >> self.telemetry.stream_shift;
        let mut t = self.telemetry.inner.lock().expect("telemetry lock");
        let slot = if t.streams.contains_key(&stream) || t.streams.len() < MAX_TRACKED_STREAMS {
            t.streams.entry(stream).or_default()
        } else {
            &mut t.overflow
        };
        match op {
            "write" => slot.writes += 1,
            "delete" => slot.deletes += 1,
            _ => slot.reads += 1,
        }
        slot.bytes += bytes;
        t.latency.record(ns);
        t.window_latency.record(ns);
        if slow {
            t.exemplar_seq += 1;
            let seq = t.exemplar_seq;
            t.exemplars.push_back(Exemplar {
                seq,
                op,
                lba,
                latency_ns: ns,
                threshold_ns: threshold,
                spans,
            });
            while t.exemplars.len() > EXEMPLAR_RING {
                t.exemplars.pop_front();
            }
        }
        let count = t.latency.count();
        if count >= P99_ARM_COUNT && (count == P99_ARM_COUNT || count.is_multiple_of(P99_REFRESH)) {
            let p99 = t.latency.percentile(0.99).unwrap_or(0).max(1);
            self.telemetry
                .p99_threshold_ns
                .store(p99, Ordering::Relaxed);
        }
    }

    /// One sampler tick: snapshot the merged metrics, push the delta
    /// sample into the ring, rotate the latency window.
    fn sample_tick(&self) {
        let cur = self.merged_metrics();
        let mut t = self.telemetry.inner.lock().expect("telemetry lock");
        let now_ms = t.started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        t.seq += 1;
        let seq = t.seq;
        let empty = MetricsSnapshot::new();
        let prev = t.prev.as_ref().unwrap_or(&empty);
        let sample = build_sample(prev, &cur, seq, now_ms, t.last_ms);
        t.samples.push_back(sample);
        while t.samples.len() > SAMPLE_RING {
            t.samples.pop_front();
        }
        t.prev = Some(cur);
        t.last_ms = now_ms;
        t.window_latency.rotate();
    }

    /// Builds the body of a [`Message::StatsReply`] for `format`.
    fn stats_body(&self, format: StatsFormat) -> Vec<u8> {
        match format {
            StatsFormat::Json => self.timeseries_json().into_bytes(),
            StatsFormat::Prometheus => self.prometheus_text().into_bytes(),
        }
    }

    /// The `fidr.timeseries.v1` JSON document: headline window rates,
    /// cumulative totals, the sample ring, per-stream rollups and slow
    /// exemplars.
    fn timeseries_json(&self) -> String {
        let merged = self.merged_metrics();
        let t = self.telemetry.inner.lock().expect("telemetry lock");
        let window = t.window_latency.merged();
        let last = t.samples.back();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{TIMESERIES_SCHEMA_ID}\",\n"));
        out.push_str(&format!(
            "  \"uptime_ms\": {},\n",
            t.started.elapsed().as_millis().min(u64::MAX as u128) as u64
        ));
        out.push_str(&format!("  \"sample_ms\": {},\n", self.telemetry.sample_ms));
        out.push_str(&format!(
            "  \"window\": {{ \"ops_per_sec\": {}, \"gbps\": {}, \"hit_ratio\": {}, \
             \"queue_depth\": {}, \"latency_p50_us\": {}, \"latency_p99_us\": {} }},\n",
            jf(last.map_or(0.0, |s| s.ops_per_sec)),
            jf(last.map_or(0.0, |s| s.gbps)),
            jf(last.map_or(0.0, |s| s.hit_ratio)),
            last.map_or(0, |s| s.queue_depth),
            jf(window.percentile(0.50).unwrap_or(0) as f64 / 1000.0),
            jf(window.percentile(0.99).unwrap_or(0) as f64 / 1000.0),
        ));
        out.push_str(&format!(
            "  \"totals\": {{ \"writes\": {}, \"reads\": {}, \"rx_bytes\": {}, \
             \"tx_bytes\": {}, \"dedup_ratio\": {}, \"deferred\": {} }},\n",
            merged.counter("server.ops.write.count").unwrap_or(0),
            merged.counter("server.ops.read.count").unwrap_or(0),
            merged.counter("server.rx.bytes").unwrap_or(0),
            merged.counter("server.tx.bytes").unwrap_or(0),
            jf(merged.gauge("reduction.dedup.ratio").unwrap_or(0.0)),
            merged.counter("dedup.deferred.pending").unwrap_or(0),
        ));
        out.push_str("  \"samples\": [");
        for (i, s) in t.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"seq\": {}, \"t_ms\": {}, \"dt_ms\": {}, \"writes\": {}, \
                 \"reads\": {}, \"rx_bytes\": {}, \"tx_bytes\": {}, \"ops_per_sec\": {}, \
                 \"gbps\": {}, \"hit_ratio\": {}, \"queue_depth\": {}, \"dedup_ratio\": {}, \
                 \"deferred\": {} }}",
                s.seq,
                s.t_ms,
                s.dt_ms,
                s.writes,
                s.reads,
                s.rx_bytes,
                s.tx_bytes,
                jf(s.ops_per_sec),
                jf(s.gbps),
                jf(s.hit_ratio),
                s.queue_depth,
                jf(s.dedup_ratio),
                s.deferred,
            ));
        }
        if !t.samples.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let (top, other) = t.top_streams(self.telemetry.top_streams);
        out.push_str("  \"streams\": [");
        let mut first = true;
        let push_stream = |out: &mut String, id: &str, s: &StreamStats, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&format!(
                "\n    {{ \"id\": \"{id}\", \"writes\": {}, \"reads\": {}, \"bytes\": {} }}",
                s.writes, s.reads, s.bytes
            ));
        };
        for (id, s) in &top {
            push_stream(&mut out, &id.to_string(), s, &mut first);
        }
        if other.ops() > 0 {
            push_stream(&mut out, "other", &other, &mut first);
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"exemplars\": [");
        for (i, e) in t.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let spans = e
                .spans
                .iter()
                .map(|(name, ns)| format!("{{ \"name\": \"{name}\", \"dur_ns\": {ns} }}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{ \"seq\": {}, \"op\": \"{}\", \"lba\": {}, \"latency_us\": {}, \
                 \"threshold_us\": {}, \"spans\": [{spans}] }}",
                e.seq,
                e.op,
                e.lba,
                jf(e.latency_ns as f64 / 1000.0),
                jf(e.threshold_ns as f64 / 1000.0),
            ));
        }
        if !t.exemplars.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Prometheus text exposition of the merged snapshot plus the
    /// telemetry-plane extras: windowed rate gauges, the windowed
    /// latency summary, the exemplar count, and labeled per-stream
    /// series (labels cannot ride through [`MetricsSnapshot`], so those
    /// lines are appended directly).
    fn prometheus_text(&self) -> String {
        let mut merged = self.merged_metrics();
        let t = self.telemetry.inner.lock().expect("telemetry lock");
        let last = t.samples.back();
        merged.set_gauge(
            "server.window.ops.rate",
            last.map_or(0.0, |s| s.ops_per_sec),
        );
        merged.set_gauge(
            "server.window.throughput.gbps",
            last.map_or(0.0, |s| s.gbps),
        );
        merged.set_gauge("server.window.hit.ratio", last.map_or(0.0, |s| s.hit_ratio));
        merged.set_histogram("server.window.latency.ns", &t.window_latency.merged());
        merged.set_gauge("server.slow.exemplars", t.exemplars.len() as f64);
        let mut out = to_prometheus_text(&merged);
        let (top, other) = t.top_streams(self.telemetry.top_streams);
        if !top.is_empty() || other.ops() > 0 {
            for (family, pick) in [("writes", 0usize), ("reads", 1), ("bytes", 2)] {
                out.push_str(&format!("# TYPE fidr_server_stream_{family} counter\n"));
                let value = |s: &StreamStats| match pick {
                    0 => s.writes,
                    1 => s.reads,
                    _ => s.bytes,
                };
                for (id, s) in &top {
                    out.push_str(&format!(
                        "fidr_server_stream_{family}{{stream=\"{id}\"}} {}\n",
                        value(s)
                    ));
                }
                if other.ops() > 0 {
                    out.push_str(&format!(
                        "fidr_server_stream_{family}{{stream=\"other\"}} {}\n",
                        value(&other)
                    ));
                }
            }
        }
        out
    }
}

/// Builds one sampler ring entry from consecutive merged snapshots.
///
/// A pure function of its inputs so the degenerate cases are unit
/// testable: coarse clocks can deliver `now_ms == last_ms` (two ticks
/// inside one millisecond tick of the OS clock), and a zero-width
/// window would zero every rate the sample carries. The window is
/// therefore clamped to the clock's 1 ms resolution — the delta really
/// did take *at most* that long.
fn build_sample(
    prev: &MetricsSnapshot,
    cur: &MetricsSnapshot,
    seq: u64,
    now_ms: u64,
    last_ms: u64,
) -> TimeSample {
    let dt_ms = now_ms.saturating_sub(last_ms).max(1);
    let writes = counter_delta(prev, cur, "server.ops.write.count");
    let reads = counter_delta(prev, cur, "server.ops.read.count");
    let rx_bytes = counter_delta(prev, cur, "server.rx.bytes");
    let tx_bytes = counter_delta(prev, cur, "server.tx.bytes");
    let hits = counter_delta(prev, cur, "cache.hits.count");
    let misses = counter_delta(prev, cur, "cache.misses.count");
    TimeSample {
        seq,
        t_ms: now_ms,
        dt_ms,
        writes,
        reads,
        rx_bytes,
        tx_bytes,
        ops_per_sec: rate_per_sec(writes + reads, dt_ms),
        gbps: rate_per_sec(rx_bytes + tx_bytes, dt_ms) / 1e9,
        hit_ratio: ratio(hits, hits + misses),
        queue_depth: cur.gauge("server.queue.depth.count").unwrap_or(0.0) as u64,
        dedup_ratio: cur.gauge("reduction.dedup.ratio").unwrap_or(0.0),
        deferred: cur.counter("dedup.deferred.pending").unwrap_or(0),
    }
}

/// Formats an `f64` for the timeseries JSON: finite `Display` output
/// (never an exponent), 0.0 for non-finite values so the document
/// always parses.
fn jf(v: f64) -> String {
    let v = if v.is_finite() { v } else { 0.0 };
    let s = format!("{v}");
    if s.contains('.') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Atomically publishes a server's bound address to `path`.
///
/// The bytes land in a same-directory temp file first and reach `path`
/// only via `rename(2)`, so a reader polling the path can never observe
/// a partially written or empty file — it either does not exist yet or
/// holds the whole `host:port\n` line. (The client side still retries
/// on unparsable contents, for port files written by older servers.)
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_port_file(path: &Path, addr: SocketAddr) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".{}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, format!("{addr}\n"))?;
    std::fs::rename(&tmp, path)
}

/// The serving front end. [`Server::spawn`] binds, starts the accept
/// loop and returns a [`ServerHandle`].
pub struct Server;

/// Handle to a running [`Server`]: address, live metrics, and the two
/// ways it ends ([`shutdown`](ServerHandle::shutdown) /
/// [`wait`](ServerHandle::wait)).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    sampler_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept loop (and, unless
    /// [`ServerConfig::sample_ms`] is 0, the telemetry sampler) and
    /// returns the handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            system: Mutex::new(FidrSystem::new(cfg.system.clone())),
            metrics: ServerMetrics::default(),
            telemetry: Telemetry::new(&cfg),
            stall: cfg.stall,
            stall_seq: AtomicU64::new(0),
            corrupt: cfg.corrupt,
            corrupt_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            queue_capacity: cfg.queue_capacity.max(1),
            gc_every: cfg.gc_every,
            gc_threshold: cfg.gc_threshold,
            deletes_since_gc: AtomicU64::new(0),
            node_id: cfg.node_id,
            shard_map: Mutex::new(None),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let conns_limit = cfg.conns_limit;
        let accept_thread =
            std::thread::spawn(move || accept_loop(&accept_shared, &listener, conns_limit));
        let sampler_thread = (cfg.sample_ms > 0).then(|| {
            let sampler_shared = Arc::clone(&shared);
            let sample_ms = cfg.sample_ms;
            std::thread::spawn(move || sampler_loop(&sampler_shared, sample_ms))
        });
        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            sampler_thread,
        })
    }
}

/// The telemetry sampler: ticks every `sample_ms` until shutdown,
/// polling often enough that drain never waits a full sample period.
fn sampler_loop(shared: &Arc<Shared>, sample_ms: u64) {
    let tick = Duration::from_millis(sample_ms);
    let poll = Duration::from_millis(sample_ms.clamp(1, 25));
    let mut last = Instant::now();
    while !shared.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        if last.elapsed() >= tick {
            shared.sample_tick();
            last = Instant::now();
        }
    }
}

/// Accepts connections until shutdown (or until `conns_limit`
/// connections were accepted *and* all of them finished). Returns the
/// connection threads for the handle to join.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns_limit: Option<u64>,
) -> Vec<JoinHandle<()>> {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let accepted = shared.metrics.connections_accepted.load(Ordering::Relaxed);
        if let Some(limit) = conns_limit {
            if accepted >= limit {
                // Past the limit: drain instead of accepting more.
                if shared.metrics.connections_active.load(Ordering::Relaxed) == 0 {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .connections_active
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                conn_threads.push(std::thread::spawn(move || {
                    serve_connection(&conn_shared, stream);
                    conn_shared
                        .metrics
                        .connections_active
                        .fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                shared.idle_scrub();
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (peer reset mid-handshake) are not
            // fatal to the server.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    conn_threads
}

/// Why one connection ended.
enum ConnEnd {
    /// Peer closed cleanly at a frame boundary.
    Clean,
    /// Protocol violation, mid-frame disconnect, IO error or backend
    /// failure.
    Error,
}

/// Runs one connection to completion: read → reassemble → serve → reply.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let end = serve_connection_inner(shared, &mut stream);
    match end {
        ConnEnd::Clean => shared
            .metrics
            .connections_closed_clean
            .fetch_add(1, Ordering::Relaxed),
        ConnEnd::Error => shared
            .metrics
            .connections_closed_error
            .fetch_add(1, Ordering::Relaxed),
    };
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_connection_inner(shared: &Arc<Shared>, stream: &mut TcpStream) -> ConnEnd {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        return ConnEnd::Error;
    }
    let mut codec = FramedCodec::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                // EOF. A partial frame left in the codec means the peer
                // died mid-frame: that frame is lost for good.
                if codec.pending_bytes() > 0 {
                    shared
                        .metrics
                        .frames_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return ConnEnd::Error;
                }
                return ConnEnd::Clean;
            }
            Ok(n) => {
                shared
                    .metrics
                    .rx_bytes
                    .fetch_add(n as u64, Ordering::Relaxed);
                codec.feed(&buf[..n]);
                loop {
                    match codec.next_frame() {
                        Ok(Some(msg)) => {
                            shared
                                .metrics
                                .frames_decoded
                                .fetch_add(1, Ordering::Relaxed);
                            if !serve_frame(shared, stream, msg) {
                                return ConnEnd::Error;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Bad opcode / hostile length: the stream has
                            // no recoverable frame boundary. Close only
                            // this connection.
                            shared
                                .metrics
                                .frames_rejected
                                .fetch_add(1, Ordering::Relaxed);
                            return ConnEnd::Error;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    // Drain: the peer went quiet and the server is
                    // leaving; no frame is in flight at this point.
                    return ConnEnd::Clean;
                }
                // The peer is between requests: use the lull for
                // deferred-dedup scrubbing.
                shared.idle_scrub();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ConnEnd::Error,
        }
    }
}

/// Admits one decoded frame through the bounded queue, applies it to the
/// shared system and writes the reply. Returns `false` when the
/// connection must close (semantic violation, backend error, dead peer).
fn serve_frame(shared: &Arc<Shared>, stream: &mut TcpStream, msg: Message) -> bool {
    let mut drain_after = false;
    let reply = match msg {
        Message::Write { lba, data } => {
            let started = Instant::now();
            let bytes = data.len() as u64;
            shared.maybe_stall();
            shared.admit();
            let outcome = apply_write(shared, lba, data);
            shared.release();
            match outcome {
                Ok(()) => {
                    shared.metrics.ops_write.fetch_add(1, Ordering::Relaxed);
                    shared.record_op("write", lba.0, bytes, started.elapsed());
                    Message::WriteAck { lba }
                }
                Err(_) => {
                    shared.metrics.ops_failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        Message::Read { lba } => {
            let started = Instant::now();
            shared.admit();
            let outcome = {
                let mut system = shared.system.lock().expect("system lock");
                system.read(lba)
            };
            shared.release();
            match outcome {
                Ok(mut data) => {
                    shared.metrics.ops_read.fetch_add(1, Ordering::Relaxed);
                    shared.record_op("read", lba.0, data.len() as u64, started.elapsed());
                    shared.maybe_corrupt(&mut data);
                    Message::ReadReply {
                        lba,
                        data: Bytes::from(data),
                    }
                }
                Err(_) => {
                    shared.metrics.ops_failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        Message::Delete { lba } => {
            let started = Instant::now();
            shared.admit();
            let outcome = {
                let mut system = shared.system.lock().expect("system lock");
                system.delete(lba)
            };
            shared.release();
            match outcome {
                Ok(()) => {
                    shared.metrics.ops_delete.fetch_add(1, Ordering::Relaxed);
                    shared.record_op("delete", lba.0, 0, started.elapsed());
                    // Cadence-triggered collection happens after the ack
                    // path is decided but before the reply is written, so
                    // an acked delete's space is reclaimable by the time
                    // the client sees the ack.
                    shared.maybe_gc();
                    Message::DeleteAck { lba }
                }
                // Deleting an unmapped LBA is a protocol-level failure,
                // same contract as reading one: close the connection.
                Err(_) => {
                    shared.metrics.ops_failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        // In-band scrape: served outside the admission queue (telemetry
        // must stay readable while the backend is saturated — the whole
        // point of scraping without draining).
        Message::StatsRequest { format } => {
            shared.metrics.ops_stats.fetch_add(1, Ordering::Relaxed);
            Message::StatsReply {
                format,
                body: Bytes::from(shared.stats_body(format)),
            }
        }
        // Cluster membership: fetch / install / drain-with-handoff
        // against this node's shard map. Served outside the admission
        // queue like a stats scrape, but an *install* takes the system
        // lock while it rehomes blocks.
        Message::ShardMapRequest { action, map } => {
            shared.metrics.ops_shardmap.fetch_add(1, Ordering::Relaxed);
            match serve_shard_map(shared, action, &map) {
                Some(reply) => {
                    drain_after = action == ShardMapAction::Drain;
                    reply
                }
                // Undecodable / stale / inconsistent map: refuse by
                // closing; the router treats no-ack as failure.
                None => return false,
            }
        }
        // Server-only opcodes arriving *at* the server are a semantic
        // violation even though they framed correctly.
        Message::WriteAck { .. }
        | Message::ReadReply { .. }
        | Message::DeleteAck { .. }
        | Message::StatsReply { .. }
        | Message::ShardMapReply { .. } => {
            shared
                .metrics
                .frames_unexpected
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
    };
    let frame = match reply.encode() {
        Ok(frame) => frame,
        // Unreachable for replies we build (reads return one chunk), but
        // a protocol bound must not panic the connection thread.
        Err(_) => return false,
    };
    if stream.write_all(&frame).is_err() {
        return false;
    }
    shared
        .metrics
        .tx_bytes
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    if drain_after {
        // The handoff is acked; ride the existing graceful-drain path
        // (accept loop stops, connections wind down, handle.wait()
        // flushes and exports).
        shared.shutdown.store(true, Ordering::Relaxed);
    }
    true
}

/// Serves one [`Message::ShardMapRequest`]. Returns the reply to send,
/// or `None` when the request must be refused (bad document, stale
/// generation, or a drain map that still lists this node).
fn serve_shard_map(shared: &Arc<Shared>, action: ShardMapAction, map: &[u8]) -> Option<Message> {
    let current_reply = |held: &Option<ShardRouter>| {
        let (generation, doc) = match held {
            Some(m) => (m.generation(), m.encode()),
            // No map installed: answer with an empty generation-0
            // document so a Get against a standalone node is well-formed.
            None => {
                let empty = ShardRouter::new(fidr_nic::shard::DEFAULT_VNODES)
                    .expect("default vnodes is nonzero");
                (0, empty.encode())
            }
        };
        Message::ShardMapReply {
            generation,
            map: Bytes::from(doc),
        }
    };
    if action == ShardMapAction::Get {
        let held = shared.shard_map.lock().expect("shard map lock");
        return Some(current_reply(&held));
    }
    let text = std::str::from_utf8(map).ok()?;
    let incoming = ShardRouter::decode(text).ok()?;
    {
        let held = shared.shard_map.lock().expect("shard map lock");
        if let Some(cur) = held.as_ref() {
            // Never step a node's view of the cluster backwards.
            if incoming.generation() < cur.generation() {
                return None;
            }
        }
    }
    // A drain means "you are out": the new map must not list us.
    if action == ShardMapAction::Drain && incoming.node(shared.node_id).is_some() {
        return None;
    }
    // Rehome before installing or acking: when the ack reaches the
    // router every block this node must give up is already durable —
    // and acked — at its new owner. Zero acked-write loss.
    if rehome_blocks(shared, &incoming).is_err() {
        return None;
    }
    let mut held = shared.shard_map.lock().expect("shard map lock");
    *held = Some(incoming);
    Some(current_reply(&held))
}

/// Pushes every resident block this node no longer owns under `map` to
/// its new owner, as ordinary acked writes over the wire, then deletes
/// the source copy — only *after* the destination acked, so every block
/// is durable at its new owner before the old copy goes away and the
/// dead chunks' space is reclaimable by the next GC pass. Returns the
/// number of blocks moved.
///
/// Traffic to this node is assumed quiesced by the router (it removes
/// the node from the routing map before issuing the install), so the
/// enumerate-read-forward-delete sequence cannot race new writes.
fn rehome_blocks(shared: &Arc<Shared>, map: &ShardRouter) -> Result<u64, FidrError> {
    // Collect the moved blocks under the system lock...
    let mut outbound: Vec<(fidr_chunk::Lba, String, Vec<u8>)> = Vec::new();
    {
        let mut system = shared.system.lock().expect("system lock");
        // Writes batched in the NIC buffer (and deferred-dedup debt)
        // have not reached the LBA map yet; flush first so the
        // enumeration below sees *every* acked write.
        system.flush()?;
        for lba in system.mapped_lbas() {
            let owner = match map.node_for_lba(lba) {
                Some(node) => node,
                // Empty map (last node leaving): nowhere to hand off.
                None => continue,
            };
            if owner.id == shared.node_id {
                continue;
            }
            let addr = owner.addr.clone();
            let data = system.read(lba)?;
            outbound.push((lba, addr, data));
        }
    }
    // ...then forward them with the lock dropped, one connection per
    // destination, in LBA order (mapped_lbas is sorted), waiting for
    // each ack.
    let mut conns: BTreeMap<String, crate::client::StorageClient> = BTreeMap::new();
    let moved = outbound.len() as u64;
    let mut acked: Vec<fidr_chunk::Lba> = Vec::with_capacity(outbound.len());
    for (lba, addr, data) in outbound {
        let io = |e: crate::client::ClientError| FidrError::Io(format!("rehome to {addr}: {e}"));
        if !conns.contains_key(&addr) {
            let sock: SocketAddr = addr
                .parse()
                .map_err(|_| FidrError::Io(format!("rehome: bad node addr {addr}")))?;
            let client = crate::client::StorageClient::connect(sock).map_err(io)?;
            conns.insert(addr.clone(), client);
        }
        let conn = conns.get_mut(&addr).expect("just inserted");
        conn.write(lba, Bytes::from(data)).map_err(io)?;
        acked.push(lba);
    }
    // Reclamation: every block in `acked` is durable at its new owner,
    // so the local copy is garbage. Unmap them all; the dead chunks
    // queue for the next GC pass. A failed forward above leaves every
    // local copy in place (the map is then not installed either).
    let reclaimed = acked.len() as u64;
    if !acked.is_empty() {
        let mut system = shared.system.lock().expect("system lock");
        for lba in acked {
            system.delete(lba)?;
        }
    }
    shared
        .metrics
        .shard_rehome
        .fetch_add(moved, Ordering::Relaxed);
    shared
        .metrics
        .shard_reclaimed
        .fetch_add(reclaimed, Ordering::Relaxed);
    Ok(moved)
}

/// Applies one write frame: a single 4-KiB chunk goes through
/// [`FidrSystem::write`]; a larger multiple-of-4-KiB payload is chunked
/// by [`FidrSystem::write_request`]; anything ragged is rejected.
fn apply_write(shared: &Arc<Shared>, lba: fidr_chunk::Lba, data: Bytes) -> Result<(), FidrError> {
    let mut system = shared.system.lock().expect("system lock");
    if data.len() == BUCKET_BYTES {
        system.write(lba, data)
    } else {
        system.write_request(lba, data).map(|_chunks| ())
    }
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live `fidr.metrics.v1` snapshot: the backend's full pipeline
    /// metrics plus the `server.*` counters and — serve opts in, the
    /// deterministic core export does not — the `pool.*` wall-clock
    /// counters of the persistent worker pool.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.merged_metrics()
    }

    /// In-process scrape: the same bytes a [`Message::StatsRequest`]
    /// over the wire returns (`fidr.timeseries.v1` JSON or Prometheus
    /// text).
    pub fn scrape(&self, format: StatsFormat) -> Vec<u8> {
        self.shared.stats_body(format)
    }

    /// Graceful shutdown: stop accepting, let every connection finish
    /// its in-flight frame and close, flush the backend (drain the NIC,
    /// seal the open container, flush dirty cache lines) and return the
    /// final metrics snapshot.
    ///
    /// # Errors
    ///
    /// Propagates a backend flush failure (the snapshot is still
    /// retrievable via [`ServerHandle::metrics`] afterwards).
    pub fn shutdown(mut self) -> Result<MetricsSnapshot, FidrError> {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.drain()
    }

    /// Blocks until the configured
    /// [`conns_limit`](ServerConfig::conns_limit) auto-drain triggers
    /// (or a [`shutdown`](ServerHandle::shutdown) from another handle —
    /// with no limit and no shutdown this never returns), then drains
    /// exactly like [`shutdown`](ServerHandle::shutdown).
    ///
    /// # Errors
    ///
    /// Propagates a backend flush failure.
    pub fn wait(mut self) -> Result<MetricsSnapshot, FidrError> {
        self.drain()
    }

    fn drain(&mut self) -> Result<MetricsSnapshot, FidrError> {
        if let Some(accept) = self.accept_thread.take() {
            let conn_threads = accept.join().expect("accept thread panicked");
            // The accept loop has stopped; make sure lingering
            // connections and the sampler see the flag and wind down.
            self.shared.shutdown.store(true, Ordering::Relaxed);
            for t in conn_threads {
                t.join().expect("connection thread panicked");
            }
        }
        if let Some(sampler) = self.sampler_thread.take() {
            sampler.join().expect("sampler thread panicked");
        }
        let mut system = self.shared.system.lock().expect("system lock");
        system.flush()?;
        let mut out = system.metrics();
        system.export_pool_metrics(&mut out);
        drop(system);
        self.shared
            .metrics
            .export(&mut out, self.shared.queue_depth());
        self.shared.export_streams(&mut out);
        Ok(out)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle must not leak the accept loop, the sampler,
        // or strand connection threads blocked on reads.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept_thread.take() {
            if let Ok(conn_threads) = accept.join() {
                for t in conn_threads {
                    let _ = t.join();
                }
            }
        }
        if let Some(sampler) = self.sampler_thread.take() {
            let _ = sampler.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the zero-width sampler window: under a
    /// coarse clock two ticks can land in the same millisecond
    /// (`now_ms == last_ms`), and the pre-fix
    /// `now_ms.saturating_sub(last_ms)` then zeroed `dt_ms`, which
    /// zeroed every rate in the sample. The window must clamp to the
    /// clock's 1 ms resolution instead.
    #[test]
    fn degenerate_sampler_tick_clamps_to_one_millisecond() {
        let prev = MetricsSnapshot::new();
        let mut cur = MetricsSnapshot::new();
        cur.set_counter("server.ops.write.count", 500);
        cur.set_counter("server.rx.bytes", 1_000_000);
        let s = build_sample(&prev, &cur, 1, 1234, 1234);
        assert_eq!(s.dt_ms, 1, "zero-width window must clamp to 1 ms");
        assert_eq!(s.writes, 500);
        // 500 ops in (at most) 1 ms is 500k ops/s — not zero, not NaN.
        assert_eq!(s.ops_per_sec, 500_000.0);
        assert!(s.gbps > 0.0);
        // A clock running backwards (suspend/resume) degenerates the
        // same way.
        assert_eq!(build_sample(&prev, &cur, 2, 100, 200).dt_ms, 1);
        // An ordinary tick is untouched.
        assert_eq!(build_sample(&prev, &cur, 3, 2000, 1000).dt_ms, 1000);
    }

    /// Regression test for the port-file handoff race: the address must
    /// appear at the final path atomically (write + rename), so a
    /// polling reader can never see a partial or empty file.
    #[test]
    fn port_file_appears_atomically_and_parses() {
        let dir = std::env::temp_dir().join(format!("fidr-portfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.port");
        let addr: SocketAddr = "127.0.0.1:4567".parse().unwrap();
        write_port_file(&path, addr).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "127.0.0.1:4567\n");
        assert_eq!(contents.trim().parse::<SocketAddr>().unwrap(), addr);
        // Republishing (a restarted server reusing the path) replaces
        // the file whole, and leaves no temp droppings behind.
        let addr2: SocketAddr = "127.0.0.1:8901".parse().unwrap();
        write_port_file(&path, addr2).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().trim(),
            "127.0.0.1:8901"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "server.port")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
