//! Library client for the TCP storage front-end: the other half of the
//! paper's two-machine deployment (§6.2).
//!
//! [`StorageClient`] speaks the write-wait-ack / read-wait-reply flow of
//! [`fidr_nic::protocol`] over one TCP connection, reassembling server
//! replies through its own [`fidr_nic::FramedCodec`].
//! [`ClusterClient`] fans the same API out across a sharded serving
//! fleet, routing every block through a [`ShardRouter`].
//! [`run_traffic`] drives N concurrent connections of interleaved
//! write/read/verify traffic against a server — the harness both the
//! `fidr client` subcommand and the loopback CI smoke test use —
//! [`run_open_loop`] drives the multi-tenant Poisson/Zipf serving shape
//! of [`fidr_workload::OpenLoopSchedule`], and [`run_verify`] re-reads
//! everything such a schedule wrote, proving zero acked-write loss
//! across topology changes.

use bytes::Bytes;
use fidr_chunk::Lba;
use fidr_compress::ContentGenerator;
use fidr_nic::protocol::{Message, ProtocolError, ShardMapAction, StatsFormat};
use fidr_nic::{FramedCodec, ShardRouter};
use fidr_workload::{
    churn_tag, content_tag, ChurnKind, ChurnSchedule, ChurnSpec, OpenLoopKind, OpenLoopSchedule,
    OpenLoopSpec,
};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Errors a client session can hit.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not frame.
    Protocol(ProtocolError),
    /// The server closed the connection before replying.
    Disconnected,
    /// A well-formed reply that does not answer the pending request.
    UnexpectedReply(Message),
    /// A shard-map document that does not decode, or a ring with no
    /// nodes to route to.
    NoRoute(String),
    /// Reads came back with contents that do not match what was
    /// written ([`TrafficReport::ensure_verified`]).
    VerifyFailed {
        /// Reads whose payload was wrong.
        failures: u64,
        /// Total reads performed.
        reads: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::UnexpectedReply(m) => write!(f, "unexpected reply {m:?}"),
            ClientError::NoRoute(why) => write!(f, "no route: {why}"),
            ClientError::VerifyFailed { failures, reads } => write!(
                f,
                "VERIFY FAILED: {failures} of {reads} reads returned data that does not \
                 match what was written"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One client connection with synchronous request/reply semantics.
pub struct StorageClient {
    stream: TcpStream,
    codec: FramedCodec,
    buf: Vec<u8>,
}

impl StorageClient {
    /// Connects to a serving front end.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(StorageClient {
            stream,
            codec: FramedCodec::new(),
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// Writes `data` at `lba` and waits for the acknowledgment
    /// (write-wait-ack, §6.2).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the ack
    /// names a different LBA.
    pub fn write(&mut self, lba: Lba, data: Bytes) -> Result<(), ClientError> {
        let frame = Message::Write { lba, data }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::WriteAck { lba: acked } if acked == lba => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Reads the block at `lba` (read-wait-ack-with-data, §6.2).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the
    /// reply names a different LBA.
    pub fn read(&mut self, lba: Lba) -> Result<Vec<u8>, ClientError> {
        let frame = Message::Read { lba }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::ReadReply { lba: got, data } if got == lba => Ok(data.to_vec()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Deletes the block at `lba` and waits for the acknowledgment
    /// (delete-wait-ack; protocol v4).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the ack
    /// names a different LBA. Deleting an unmapped LBA is refused by
    /// the server closing the connection, which surfaces as
    /// [`ClientError::Disconnected`].
    pub fn delete(&mut self, lba: Lba) -> Result<(), ClientError> {
        let frame = Message::Delete { lba }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::DeleteAck { lba: acked } if acked == lba => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Scrapes the server's live telemetry in-band: sends a
    /// [`Message::StatsRequest`] and returns the reply body
    /// (`fidr.timeseries.v1` JSON or Prometheus text, by `format`).
    /// Works mid-traffic on the same connection — no drain required.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the
    /// reply's format does not echo the request's.
    pub fn scrape(&mut self, format: StatsFormat) -> Result<Bytes, ClientError> {
        let frame = Message::StatsRequest { format }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::StatsReply { format: got, body } if got == format => Ok(body),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Sends a [`Message::ShardMapRequest`] and returns the node's
    /// reply: its current map generation and encoded `fidr.shardmap.v1`
    /// document. `map` must be empty for [`ShardMapAction::Get`] and an
    /// encoded map for the install actions.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a node refuses a bad or stale install by
    /// closing the connection, which surfaces as
    /// [`ClientError::Disconnected`].
    pub fn shard_map(
        &mut self,
        action: ShardMapAction,
        map: &str,
    ) -> Result<(u64, String), ClientError> {
        let frame = Message::ShardMapRequest {
            action,
            map: Bytes::from(map.to_string()),
        }
        .encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::ShardMapReply { generation, map } => {
                Ok((generation, String::from_utf8_lossy(&map).into_owned()))
            }
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Blocks until the next whole reply frame arrives.
    fn recv(&mut self) -> Result<Message, ClientError> {
        loop {
            if let Some(msg) = self.codec.next_frame()? {
                return Ok(msg);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            self.codec.feed(&self.buf[..n]);
        }
    }
}

/// Reads a server's `--port-file`, retrying with backoff until the file
/// exists *and* parses as a socket address, up to `timeout`.
///
/// The server side publishes the file atomically
/// ([`crate::server::write_port_file`]), but a reader may still start
/// before the file exists at all — and port files written by older
/// servers can transiently be empty or partial — so the client side
/// retries on *any* unreadable or unparsable contents rather than
/// trusting its first glimpse.
///
/// # Errors
///
/// `TimedOut` when no parsable address appeared within `timeout`.
pub fn read_port_file(path: &Path, timeout: Duration) -> std::io::Result<SocketAddr> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(2);
    loop {
        if let Ok(contents) = std::fs::read_to_string(path) {
            if let Ok(addr) = contents.trim().parse::<SocketAddr>() {
                return Ok(addr);
            }
        }
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "no parsable address at {} within {timeout:?}",
                    path.display()
                ),
            ));
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(100));
    }
}

/// The block-device face shared by [`StorageClient`] (one node) and
/// [`ClusterClient`] (a sharded fleet): the traffic and verification
/// harnesses drive either through this, which is how "fan-out vs
/// single-node produce identical contents" gets tested with one code
/// path.
pub trait BlockDevice {
    /// Writes `data` at `lba`, waiting for the acknowledgment.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    fn write_block(&mut self, lba: Lba, data: Bytes) -> Result<(), ClientError>;

    /// Reads the block at `lba`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    fn read_block(&mut self, lba: Lba) -> Result<Vec<u8>, ClientError>;

    /// Deletes the block at `lba`, waiting for the acknowledgment.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    fn delete_block(&mut self, lba: Lba) -> Result<(), ClientError>;
}

impl BlockDevice for StorageClient {
    fn write_block(&mut self, lba: Lba, data: Bytes) -> Result<(), ClientError> {
        self.write(lba, data)
    }

    fn read_block(&mut self, lba: Lba) -> Result<Vec<u8>, ClientError> {
        self.read(lba)
    }

    fn delete_block(&mut self, lba: Lba) -> Result<(), ClientError> {
        self.delete(lba)
    }
}

/// A sharded-fleet client: one connection per serving node, every
/// block routed to its owner by a [`ShardRouter`]. The same
/// write-wait-ack semantics as [`StorageClient`], fanned out.
pub struct ClusterClient {
    router: ShardRouter,
    conns: BTreeMap<u64, StorageClient>,
}

impl ClusterClient {
    /// Connects to every node in `router`'s map.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoRoute`] on an empty map; otherwise the first
    /// connect failure.
    pub fn connect(router: ShardRouter) -> Result<Self, ClientError> {
        if router.nodes().is_empty() {
            return Err(ClientError::NoRoute("shard map has no nodes".into()));
        }
        let mut conns = BTreeMap::new();
        for node in router.nodes() {
            let addr: SocketAddr = node
                .addr
                .parse()
                .map_err(|_| ClientError::NoRoute(format!("bad node addr {}", node.addr)))?;
            conns.insert(node.id, StorageClient::connect(addr)?);
        }
        Ok(ClusterClient { router, conns })
    }

    /// The routing map this client fans out over.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    fn conn_for(&mut self, lba: Lba) -> Result<&mut StorageClient, ClientError> {
        let id = self
            .router
            .node_for_lba(lba)
            .ok_or_else(|| ClientError::NoRoute("empty ring".into()))?
            .id;
        self.conns
            .get_mut(&id)
            .ok_or_else(|| ClientError::NoRoute(format!("no connection to node {id}")))
    }

    /// Writes `data` at `lba` on the owning node (write-wait-ack).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn write(&mut self, lba: Lba, data: Bytes) -> Result<(), ClientError> {
        self.conn_for(lba)?.write(lba, data)
    }

    /// Reads the block at `lba` from the owning node.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn read(&mut self, lba: Lba) -> Result<Vec<u8>, ClientError> {
        self.conn_for(lba)?.read(lba)
    }

    /// Deletes the block at `lba` on the owning node (delete-wait-ack):
    /// the shard map routes deletes exactly as it routes the writes
    /// that created the block.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn delete(&mut self, lba: Lba) -> Result<(), ClientError> {
        self.conn_for(lba)?.delete(lba)
    }

    /// Scrapes every node's live telemetry, keyed by node id.
    ///
    /// # Errors
    ///
    /// The first scrape failure.
    pub fn scrape_all(&mut self, format: StatsFormat) -> Result<BTreeMap<u64, Bytes>, ClientError> {
        let mut out = BTreeMap::new();
        for (id, conn) in &mut self.conns {
            out.insert(*id, conn.scrape(format)?);
        }
        Ok(out)
    }
}

impl BlockDevice for ClusterClient {
    fn write_block(&mut self, lba: Lba, data: Bytes) -> Result<(), ClientError> {
        self.write(lba, data)
    }

    fn read_block(&mut self, lba: Lba) -> Result<Vec<u8>, ClientError> {
        self.read(lba)
    }

    fn delete_block(&mut self, lba: Lba) -> Result<(), ClientError> {
        self.delete(lba)
    }
}

/// Outcome of one traffic or verification drive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Write ops acknowledged.
    pub writes: u64,
    /// Read ops answered.
    pub reads: u64,
    /// Delete ops acknowledged.
    pub deletes: u64,
    /// Reads whose payload did not match what this client wrote there.
    pub verify_failures: u64,
}

impl TrafficReport {
    /// Folds another report (a worker's, or another node's) into this
    /// one.
    pub fn merge(&mut self, other: TrafficReport) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.deletes += other.deletes;
        self.verify_failures += other.verify_failures;
    }

    /// Promotes verify failures from a counter to a hard error: returns
    /// the report unchanged when every read verified, and
    /// [`ClientError::VerifyFailed`] otherwise. Callers that exit on
    /// `Err` — the `fidr client` subcommand does — therefore cannot
    /// silently swallow corruption.
    ///
    /// # Errors
    ///
    /// [`ClientError::VerifyFailed`] when `verify_failures > 0`.
    pub fn ensure_verified(self) -> Result<TrafficReport, ClientError> {
        if self.verify_failures > 0 {
            return Err(ClientError::VerifyFailed {
                failures: self.verify_failures,
                reads: self.reads,
            });
        }
        Ok(self)
    }
}

/// Drives `conns` concurrent connections of interleaved write/read
/// traffic, `ops` requests each, against the server at `addr`.
///
/// Each connection owns a disjoint LBA range and deterministic
/// (seed-derived) chunk contents, so every read — about one in three
/// ops, always of a previously written LBA — verifies byte-exactly
/// against what *that* connection wrote. Duplicate content across
/// connections (the tag space is shared) keeps the dedup pipeline busy.
///
/// # Errors
///
/// The first [`ClientError`] of any connection, after all connections
/// finish or fail.
pub fn run_traffic(
    addr: SocketAddr,
    conns: usize,
    ops: usize,
    seed: u64,
) -> Result<TrafficReport, ClientError> {
    let mut joined = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_id in 0..conns as u64 {
            handles.push(scope.spawn(move || {
                let mut client = StorageClient::connect(addr)?;
                drive_device(&mut client, conn_id, ops, seed)
            }));
        }
        for h in handles {
            joined.push(h.join().expect("client thread panicked"));
        }
    });
    let mut total = TrafficReport::default();
    for outcome in joined {
        total.merge(outcome?);
    }
    Ok(total)
}

/// [`run_traffic`], fanned out across a sharded fleet: every worker
/// routes each block through its own [`ClusterClient`] over `router`.
/// The traffic shape (LBA ranges, contents, read-verify cadence) is
/// *identical* to the single-node drive — only the routing differs — so
/// reports and read-back contents are directly comparable.
///
/// # Errors
///
/// The first [`ClientError`] of any worker, after all workers finish or
/// fail.
pub fn run_cluster_traffic(
    router: &ShardRouter,
    conns: usize,
    ops: usize,
    seed: u64,
) -> Result<TrafficReport, ClientError> {
    let mut joined = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_id in 0..conns as u64 {
            let router = router.clone();
            handles.push(scope.spawn(move || {
                let mut client = ClusterClient::connect(router)?;
                drive_device(&mut client, conn_id, ops, seed)
            }));
        }
        for h in handles {
            joined.push(h.join().expect("client thread panicked"));
        }
    });
    let mut total = TrafficReport::default();
    for outcome in joined {
        total.merge(outcome?);
    }
    Ok(total)
}

/// One worker's deterministic write/read/verify loop, over any
/// [`BlockDevice`] (a single node or a routed fleet).
fn drive_device<D: BlockDevice>(
    dev: &mut D,
    conn_id: u64,
    ops: usize,
    seed: u64,
) -> Result<TrafficReport, ClientError> {
    let gen = ContentGenerator::new(0.5);
    let mut report = TrafficReport::default();
    let base = conn_id * 1_000_000;
    // content_of keeps the tag space shared across connections so the
    // server sees cross-client duplicates to eliminate.
    let content_of = |i: u64| seed.wrapping_mul(31).wrapping_add(i % 40);
    let mut written = 0u64;
    for i in 0..ops as u64 {
        // Every third op (once something is written) reads back and
        // verifies a previously written LBA; the rest write.
        if i % 3 == 2 && written > 0 {
            let j = (i.wrapping_mul(seed | 1)) % written;
            let got = dev.read_block(Lba(base + j))?;
            report.reads += 1;
            if got != gen.chunk(content_of(j), 4096) {
                report.verify_failures += 1;
            }
        } else {
            let data = Bytes::from(gen.chunk(content_of(written), 4096));
            dev.write_block(Lba(base + written), data)?;
            report.writes += 1;
            written += 1;
        }
    }
    Ok(report)
}

/// The LBA of tenant `tenant`'s block at `offset` under the serving
/// layout: tenant id in the high bits, matching the server's per-stream
/// telemetry keying so per-stream rollups are per-tenant metrics.
fn tenant_lba(tenant: u64, offset: u64, stream_shift: u32) -> Lba {
    Lba((tenant << stream_shift) | offset)
}

/// Drives the open-loop, multi-tenant serving shape of
/// [`OpenLoopSchedule`] across `conns` workers, each built by
/// `factory` (a [`StorageClient`] for one node, a [`ClusterClient`]
/// for a fleet).
///
/// Workers are **tenant-sticky** (`tenant % conns`), so each tenant's
/// write→read order is preserved, and pace against a **global arrival
/// clock**: op `i` is issued no earlier than the schedule's `i`-th
/// arrival time regardless of when earlier ops completed — the
/// open-loop property that keeps a slow server from slowing the
/// offered load.
///
/// # Errors
///
/// The first [`ClientError`] of any worker (including device
/// construction), after all workers finish or fail.
pub fn run_open_loop<D, F>(
    mut factory: F,
    conns: usize,
    spec: OpenLoopSpec,
    stream_shift: u32,
) -> Result<TrafficReport, ClientError>
where
    D: BlockDevice + Send,
    F: FnMut() -> Result<D, ClientError>,
{
    let conns = conns.max(1);
    let schedule = OpenLoopSchedule::generate(spec);
    // Absolute arrival times (prefix sums of the inter-arrival gaps):
    // the open-loop clock every worker paces against.
    let mut arrivals = Vec::with_capacity(schedule.ops().len());
    let mut t = 0u64;
    for op in schedule.ops() {
        t += op.delay_ns;
        arrivals.push(t);
    }
    let mut devices = Vec::with_capacity(conns);
    for _ in 0..conns {
        devices.push(factory()?);
    }
    let seed = spec.seed;
    let ops = schedule.ops();
    let arrivals = &arrivals;
    let mut joined: Vec<Result<TrafficReport, ClientError>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (worker, mut dev) in devices.into_iter().enumerate() {
            handles.push(scope.spawn(move || {
                let gen = ContentGenerator::new(0.5);
                let start = Instant::now();
                let mut report = TrafficReport::default();
                for (i, op) in ops.iter().enumerate() {
                    if op.tenant as usize % conns != worker {
                        continue;
                    }
                    let due = Duration::from_nanos(arrivals[i]);
                    let elapsed = start.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                    match op.kind {
                        OpenLoopKind::Write { offset } => {
                            let tag = content_tag(seed, op.tenant, offset);
                            let data = Bytes::from(gen.chunk(tag, 4096));
                            dev.write_block(tenant_lba(op.tenant, offset, stream_shift), data)?;
                            report.writes += 1;
                        }
                        OpenLoopKind::Read { offset } => {
                            let got =
                                dev.read_block(tenant_lba(op.tenant, offset, stream_shift))?;
                            report.reads += 1;
                            let tag = content_tag(seed, op.tenant, offset);
                            if got != gen.chunk(tag, 4096) {
                                report.verify_failures += 1;
                            }
                        }
                    }
                }
                Ok(report)
            }));
        }
        for h in handles {
            joined.push(h.join().expect("open-loop worker panicked"));
        }
    });
    let mut total = TrafficReport::default();
    for outcome in joined {
        total.merge(outcome?);
    }
    Ok(total)
}

/// Re-reads **every** block an [`OpenLoopSchedule`] run of `spec` wrote
/// and verifies each byte-exactly, through any [`BlockDevice`]. Because
/// the schedule is a pure function of the spec (offsets are append-only
/// per tenant), this needs no record from the traffic run itself — it
/// is the zero-acked-write-loss check the drain/handoff e2e leans on:
/// run traffic, reshard, then `run_verify` through the *new* topology.
///
/// # Errors
///
/// The first [`ClientError`]; verification mismatches are counted in
/// the report, not raised (callers chain
/// [`TrafficReport::ensure_verified`]).
pub fn run_verify<D: BlockDevice>(
    dev: &mut D,
    spec: OpenLoopSpec,
    stream_shift: u32,
) -> Result<TrafficReport, ClientError> {
    let schedule = OpenLoopSchedule::generate(spec);
    let gen = ContentGenerator::new(0.5);
    let mut report = TrafficReport::default();
    for (tenant, count) in schedule.writes_per_tenant() {
        for offset in 0..count {
            let got = dev.read_block(tenant_lba(tenant, offset, stream_shift))?;
            report.reads += 1;
            if got != gen.chunk(content_tag(spec.seed, tenant, offset), 4096) {
                report.verify_failures += 1;
            }
        }
    }
    Ok(report)
}

/// Drives a [`ChurnSchedule`] — write, overwrite, delete — through any
/// [`BlockDevice`], in the schedule's deterministic issue order. This
/// is the aging workload of the delete→refcount→GC lifecycle: rewrites
/// strand old content generations dead inside sealed containers, and
/// deletes unmap blocks outright, so a subsequent GC pass has real
/// garbage to reclaim.
///
/// # Errors
///
/// The first [`ClientError`].
pub fn run_churn<D: BlockDevice>(
    dev: &mut D,
    spec: ChurnSpec,
    stream_shift: u32,
) -> Result<TrafficReport, ClientError> {
    let schedule = ChurnSchedule::generate(spec);
    let gen = ContentGenerator::new(0.5);
    let mut report = TrafficReport::default();
    for op in schedule.ops() {
        let lba = tenant_lba(op.tenant, op.offset, stream_shift);
        match op.kind {
            ChurnKind::Write { round } => {
                let tag = churn_tag(spec.seed, op.tenant, op.offset, round);
                dev.write_block(lba, Bytes::from(gen.chunk(tag, 4096)))?;
                report.writes += 1;
            }
            ChurnKind::Delete => {
                dev.delete_block(lba)?;
                report.deletes += 1;
            }
        }
    }
    Ok(report)
}

/// Re-reads every **survivor** of a [`ChurnSchedule`] run of `spec` and
/// verifies each byte-exactly against its last-written content
/// generation. The survivor set is a pure function of the spec
/// ([`ChurnSchedule::survivors`]), so this needs no record from the
/// churn run — it is the post-GC safety check: age the store, collect
/// garbage, then prove every block that should still exist reads back
/// byte-identical.
///
/// # Errors
///
/// The first [`ClientError`]; verification mismatches are counted in
/// the report, not raised (callers chain
/// [`TrafficReport::ensure_verified`]).
pub fn run_churn_verify<D: BlockDevice>(
    dev: &mut D,
    spec: ChurnSpec,
    stream_shift: u32,
) -> Result<TrafficReport, ClientError> {
    let schedule = ChurnSchedule::generate(spec);
    let gen = ContentGenerator::new(0.5);
    let mut report = TrafficReport::default();
    for (&(tenant, offset), &round) in schedule.survivors() {
        let got = dev.read_block(tenant_lba(tenant, offset, stream_shift))?;
        report.reads += 1;
        if got != gen.chunk(churn_tag(spec.seed, tenant, offset, round), 4096) {
            report.verify_failures += 1;
        }
    }
    Ok(report)
}
