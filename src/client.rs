//! Library client for the TCP storage front-end: the other half of the
//! paper's two-machine deployment (§6.2).
//!
//! [`StorageClient`] speaks the write-wait-ack / read-wait-reply flow of
//! [`fidr_nic::protocol`] over one TCP connection, reassembling server
//! replies through its own [`fidr_nic::FramedCodec`].
//! [`run_traffic`] drives N concurrent connections of interleaved
//! write/read/verify traffic against a server — the harness both the
//! `fidr client` subcommand and the loopback CI smoke test use.

use bytes::Bytes;
use fidr_chunk::Lba;
use fidr_compress::ContentGenerator;
use fidr_nic::protocol::{Message, ProtocolError, StatsFormat};
use fidr_nic::FramedCodec;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Errors a client session can hit.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not frame.
    Protocol(ProtocolError),
    /// The server closed the connection before replying.
    Disconnected,
    /// A well-formed reply that does not answer the pending request.
    UnexpectedReply(Message),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::UnexpectedReply(m) => write!(f, "unexpected reply {m:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One client connection with synchronous request/reply semantics.
pub struct StorageClient {
    stream: TcpStream,
    codec: FramedCodec,
    buf: Vec<u8>,
}

impl StorageClient {
    /// Connects to a serving front end.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(StorageClient {
            stream,
            codec: FramedCodec::new(),
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// Writes `data` at `lba` and waits for the acknowledgment
    /// (write-wait-ack, §6.2).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the ack
    /// names a different LBA.
    pub fn write(&mut self, lba: Lba, data: Bytes) -> Result<(), ClientError> {
        let frame = Message::Write { lba, data }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::WriteAck { lba: acked } if acked == lba => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Reads the block at `lba` (read-wait-ack-with-data, §6.2).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the
    /// reply names a different LBA.
    pub fn read(&mut self, lba: Lba) -> Result<Vec<u8>, ClientError> {
        let frame = Message::Read { lba }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::ReadReply { lba: got, data } if got == lba => Ok(data.to_vec()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Scrapes the server's live telemetry in-band: sends a
    /// [`Message::StatsRequest`] and returns the reply body
    /// (`fidr.timeseries.v1` JSON or Prometheus text, by `format`).
    /// Works mid-traffic on the same connection — no drain required.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::UnexpectedReply`] if the
    /// reply's format does not echo the request's.
    pub fn scrape(&mut self, format: StatsFormat) -> Result<Bytes, ClientError> {
        let frame = Message::StatsRequest { format }.encode()?;
        self.stream.write_all(&frame)?;
        match self.recv()? {
            Message::StatsReply { format: got, body } if got == format => Ok(body),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Blocks until the next whole reply frame arrives.
    fn recv(&mut self) -> Result<Message, ClientError> {
        loop {
            if let Some(msg) = self.codec.next_frame()? {
                return Ok(msg);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            self.codec.feed(&self.buf[..n]);
        }
    }
}

/// Outcome of one [`run_traffic`] drive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Write ops acknowledged.
    pub writes: u64,
    /// Read ops answered.
    pub reads: u64,
    /// Reads whose payload did not match what this client wrote there.
    pub verify_failures: u64,
}

/// Drives `conns` concurrent connections of interleaved write/read
/// traffic, `ops` requests each, against the server at `addr`.
///
/// Each connection owns a disjoint LBA range and deterministic
/// (seed-derived) chunk contents, so every read — about one in three
/// ops, always of a previously written LBA — verifies byte-exactly
/// against what *that* connection wrote. Duplicate content across
/// connections (the tag space is shared) keeps the dedup pipeline busy.
///
/// # Errors
///
/// The first [`ClientError`] of any connection, after all connections
/// finish or fail.
pub fn run_traffic(
    addr: SocketAddr,
    conns: usize,
    ops: usize,
    seed: u64,
) -> Result<TrafficReport, ClientError> {
    let mut joined = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_id in 0..conns as u64 {
            handles.push(scope.spawn(move || drive_connection(addr, conn_id, ops, seed)));
        }
        for h in handles {
            joined.push(h.join().expect("client thread panicked"));
        }
    });
    let mut total = TrafficReport::default();
    for outcome in joined {
        let report = outcome?;
        total.writes += report.writes;
        total.reads += report.reads;
        total.verify_failures += report.verify_failures;
    }
    Ok(total)
}

/// One connection's deterministic write/read/verify loop.
fn drive_connection(
    addr: SocketAddr,
    conn_id: u64,
    ops: usize,
    seed: u64,
) -> Result<TrafficReport, ClientError> {
    let gen = ContentGenerator::new(0.5);
    let mut client = StorageClient::connect(addr)?;
    let mut report = TrafficReport::default();
    let base = conn_id * 1_000_000;
    // content_of keeps the tag space shared across connections so the
    // server sees cross-client duplicates to eliminate.
    let content_of = |i: u64| seed.wrapping_mul(31).wrapping_add(i % 40);
    let mut written = 0u64;
    for i in 0..ops as u64 {
        // Every third op (once something is written) reads back and
        // verifies a previously written LBA; the rest write.
        if i % 3 == 2 && written > 0 {
            let j = (i.wrapping_mul(seed | 1)) % written;
            let got = client.read(Lba(base + j))?;
            report.reads += 1;
            if got != gen.chunk(content_of(j), 4096) {
                report.verify_failures += 1;
            }
        } else {
            let data = Bytes::from(gen.chunk(content_of(written), 4096));
            client.write(Lba(base + written), data)?;
            report.writes += 1;
            written += 1;
        }
    }
    Ok(report)
}
