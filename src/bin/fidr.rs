//! `fidr` — command-line driver for the FIDR reproduction.
//!
//! ```text
//! fidr run --workload write-h --variant full [--ops N] [--metrics-out F] [--spans-out F]
//! fidr compare [--workload write-h] [--ops N]
//! fidr stats [--workload write-h] [--variant full] [--ops N] [--metrics-out F] [--spans-out F]
//! fidr spans [--workload write-h] [--variant full] [--ops N] [--spans-out F]
//! fidr latency
//! fidr cost [--capacity-tb 500] [--throughput 75]
//! fidr trace <file> [--chunk-kb 32] [--metrics-out F] [--spans-out F]
//! ```

use fidr::chunk::{replay_chunking, Lba};
use fidr::cli::{
    allowed_flags, bool_flag, f64_flag, list_flag, opt_positive_u64_flag, output_flag, parse_flags,
    reject_unknown_flags, u16_flag, u64_flag, usize_flag, variant_by_name, workload_by_name,
    write_output,
};
use fidr::client::{
    run_churn, run_churn_verify, run_cluster_traffic, run_open_loop, run_traffic, run_verify,
    ClusterClient, StorageClient,
};
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem, LatencyModel, TieredDedupConfig};
use fidr::cost::{CostModel, Scenario};
use fidr::faults::FaultPlan;
use fidr::hwsim::{report, PlatformSpec};
use fidr::nic::protocol::StatsFormat;
use fidr::router::{drain_node, join_node, map_from_addrs, push_map, Router, RouterConfig};
use fidr::server::{Server, ServerConfig};
use fidr::ssd::SsdSpec;
use fidr::trace::{chrome_trace_json, validate_chrome_trace, SpanRecord, TraceConfig};
use fidr::workload::{parse_trace, to_block_writes, TraceOp, WorkloadSpec};
use fidr::{run_workload, RunConfig, SystemVariant};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "fidr — FIDR (MICRO'19) storage-system reproduction

USAGE:
    fidr run     --workload <NAME> --variant <VARIANT> [--ops N] [--faults SPEC]
                 [--workers N] [--cache-shards N] [--tiered]
                 [--metrics-out FILE] [--spans-out FILE]
    fidr compare [--workload <NAME>] [--ops N]
    fidr stats   [--workload <NAME>] [--variant <VARIANT>] [--ops N] [--faults SPEC]
                 [--workers N] [--cache-shards N] [--tiered]
                 [--metrics-out FILE] [--spans-out FILE]
    fidr spans   [--workload <NAME>] [--variant <VARIANT>] [--ops N] [--faults SPEC]
                 [--workers N] [--cache-shards N] [--tiered] [--spans-out FILE]
    fidr latency
    fidr cost    [--capacity-tb X] [--throughput GBPS]
    fidr trace   <FILE> [--chunk-kb 4|8|16|32] [--faults SPEC]
                 [--workers N] [--cache-shards N]
                 [--metrics-out FILE] [--spans-out FILE]
    fidr report  [--ops N] [--out FILE]
    fidr serve   [--port P] [--port-file FILE] [--conns-limit N] [--queue N]
                 [--workers N] [--cache-shards N] [--tiered] [--sample-ms MS]
                 [--metrics-out FILE] [--node-id ID]
                 [--gc-every N] [--gc-threshold F]
    fidr client  (--addr HOST:PORT | --nodes A,B,...) [--conns N] [--ops N]
                 [--seed S] [--mode traffic|open|verify|churn|churn-verify]
                 [--tenants N] [--zipf S] [--rate OPS_PER_SEC]
                 [--blocks N] [--rounds N] [--delete-pct P]
    fidr gc      [--tenants N] [--blocks N] [--rounds N] [--delete-pct P]
                 [--seed S] [--threshold F] [--workers N] [--metrics-out FILE]
    fidr scrape  --addr HOST:PORT [--prom] [--out FILE]
    fidr top     --addr HOST:PORT [--interval-ms MS] [--iters N]
    fidr route   --nodes A,B,... [--port P] [--port-file FILE] [--conns-limit N]
    fidr reshard --nodes A,B,... [--join HOST:PORT | --drain ID]

WORKLOADS:  write-h | write-m | write-l | read-mixed | vdi | database
VARIANTS:   baseline | nic-p2p | hw-single | full
PARALLEL:   --workers N fans each pipeline batch (hashing, dedup lookup,
            compression) over N host threads; --cache-shards N splits the
            table cache into N hash-prefix shards, each with its own index
            engine. Results merge in batch order, so metrics and spans
            exports stay byte-identical for any --workers value. With an
            armed --faults schedule the pipeline runs serially (fault
            decisions depend on device-call order).
TIERED:     --tiered enables the temperature-tiered table cache: per-stream
            locality classification admits only hot-stream fingerprints to
            DRAM; cold-stream writes defer dedup to a background scrubber
            (cache.tier.*, dedup.deferred.* and scrub.* metrics). FIDR
            variants only; metrics/spans stay byte-identical across
            --workers values.
OUTPUTS:    --metrics-out writes the metrics snapshot JSON (fidr.metrics.v1;
            `fidr stats` also accepts the legacy --out). --spans-out writes
            per-request spans as Chrome-trace-event JSON (fidr.spans.v1) —
            open it in https://ui.perfetto.dev or chrome://tracing. Both
            files are byte-identical across same-seed runs.
FAULTS:     seeded device-fault schedule, e.g.
            --faults seed=7,data_write=0.01,corrupt=0.005,engine_at=2000
            (keys: seed, data_write, data_read, corrupt, table_read,
             table_write, nic, engine_at — recovery shows up in the
             faults.*, retry.* and degraded.* metrics)
SERVING:    `fidr serve` binds 127.0.0.1 (--port 0 = ephemeral, written to
            --port-file) and serves the §6.2 wire protocol concurrently;
            with --conns-limit N it drains and exits cleanly after N
            connections have come and gone. `fidr client` drives
            interleaved write/read/verify traffic over --conns parallel
            connections and fails on any mismatch. Serving counters are
            exported as server.* in the fidr.metrics.v1 snapshot.
TELEMETRY:  a running server samples its merged metrics every --sample-ms
            (default 1000; 0 disables the sampler) into a rolling
            fidr.timeseries.v1 ring with per-stream rollups and slow-request
            exemplars. `fidr scrape` fetches it in-band over the wire
            protocol (JSON, or Prometheus text with --prom); `fidr top`
            refreshes a live terminal view (throughput, queue, dedup ratio,
            cache hit rate, top streams, slow exemplars) every --interval-ms,
            --iters times (0 = until interrupted). The drain-time metrics
            export stays byte-identical whether the sampler runs or not.
LIFECYCLE:  `fidr client --mode churn` drives a deterministic
            write→overwrite→delete aging schedule (protocol v4 Delete
            frames) over --tenants x --blocks blocks for --rounds rounds,
            deleting --delete-pct percent of visits; --mode churn-verify
            re-reads every surviving block of the same-seed schedule and
            fails on any mismatch — run it after a GC pass to prove the
            collector never reclaims referenced chunks. A server started
            with --gc-every N runs a GC pass after every N acked deletes
            (and opportunistically when idle); --gc-threshold F compacts
            containers whose live fraction fell below F (default 0.5).
            `fidr gc` runs the whole lifecycle in-process — churn, collect
            garbage, verify survivors — and fails if churn deletes freed
            no space or any survivor read back wrong (gc.* metrics in the
            --metrics-out snapshot).
CLUSTER:    --nodes A,B,... names a serving fleet; node ids are 1-based
            positions in the list, so every command passing the same list
            derives the same fidr.shardmap.v1 map. `fidr client --nodes`
            fans traffic out over the fleet by consistent-hash routing;
            --mode open drives open-loop Poisson arrivals over --tenants
            Zipf(--zipf)-popular tenants at --rate ops/s, and --mode verify
            re-reads everything the same-seed open run wrote (exit 1 on any
            mismatch). `fidr route` runs a stateless front tier speaking the
            single-node wire protocol over the fleet. `fidr reshard --join`
            adds a node (survivors rehome its keys before acking);
            --drain ID removes one, after it rehomes every block it holds —
            zero acked-write loss either way.";

/// Exports `spans` as Chrome-trace-event JSON to `path`, self-validating
/// the shape on the way out; returns the event count.
fn export_spans(path: &str, spans: &[SpanRecord]) -> Result<usize, String> {
    let json = chrome_trace_json(spans);
    let events =
        validate_chrome_trace(&json).map_err(|e| format!("internal: bad trace JSON: {e}"))?;
    write_output(path, &json)?;
    Ok(events)
}

/// Parses the optional `--tiered` boolean flag into a system config.
fn tiered_flag(flags: &HashMap<String, String>) -> Result<Option<TieredDedupConfig>, String> {
    Ok(bool_flag(flags, "tiered")?.then(TieredDedupConfig::default))
}

/// Parses the optional `--faults` schedule flag.
fn faults_flag(flags: &HashMap<String, String>) -> Result<FaultPlan, String> {
    match flags.get("faults") {
        Some(spec) if !spec.is_empty() => {
            FaultPlan::parse(spec).map_err(|e| format!("bad --faults: {e}"))
        }
        Some(_) => Err("--faults needs a value".into()),
        None => Ok(FaultPlan::default()),
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let ops = usize_flag(flags, "ops", 15_000)?;
    let wl = flags.get("workload").ok_or("missing --workload")?;
    let spec = workload_by_name(wl, ops).ok_or("unknown workload")?;
    let var = flags.get("variant").ok_or("missing --variant")?;
    let variant = variant_by_name(var).ok_or("unknown variant")?;
    let faults = faults_flag(flags)?;
    let workers = usize_flag(flags, "workers", 1)?;
    let cache_shards = usize_flag(flags, "cache-shards", 1)?;
    let tiered = tiered_flag(flags)?;
    let metrics_out = output_flag(flags, &["metrics-out"])?;
    let spans_out = output_flag(flags, &["spans-out"])?;

    let r = run_workload(
        variant,
        spec,
        RunConfig {
            faults,
            workers,
            cache_shards,
            tiered,
            trace: if spans_out.is_some() {
                TraceConfig::enabled()
            } else {
                TraceConfig::default()
            },
            ..RunConfig::default()
        },
    );
    let platform = PlatformSpec::default();
    println!("workload: {}   variant: {}\n", r.workload, variant.label());
    println!("host memory breakdown:");
    print!("{}", report::memory_breakdown_table(&r.ledger));
    println!("\nCPU breakdown:");
    print!("{}", report::cpu_breakdown_table(&r.ledger));
    println!("\nprojection on a 22-core / 170-GB/s socket:");
    print!("{}", report::projection_table(&r.ledger, &platform, &[]));
    println!(
        "\nreduction: {:.2}x ({} unique / {} duplicate chunks); cache hit {:.1}%",
        r.reduction.reduction_factor(),
        r.reduction.unique_chunks,
        r.reduction.duplicate_chunks,
        r.cache.hit_rate() * 100.0,
    );
    if let Some(h) = r.hwtree {
        println!(
            "cache HW-engine: {} searches / {} updates, crash rate {:.4}%",
            h.searches,
            h.updates,
            h.crash_rate() * 100.0
        );
    }
    if let Some(path) = &metrics_out {
        write_output(path, &r.metrics.to_json())?;
        println!("wrote {path}");
    }
    if let Some(path) = &spans_out {
        let events = export_spans(path, &r.spans)?;
        println!(
            "wrote {path}: {events} span events ({} dropped by the ring)",
            r.metrics.counter("trace.dropped_spans").unwrap_or(0)
        );
    }
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let ops = usize_flag(flags, "ops", 15_000)?;
    let platform = PlatformSpec::default();
    let specs = match flags.get("workload") {
        Some(name) => vec![workload_by_name(name, ops).ok_or("unknown workload")?],
        None => WorkloadSpec::table3(ops),
    };
    println!(
        "{:<12} {:<24} {:>12} {:>12} {:>14}",
        "workload", "variant", "mem B/B", "cores@75", "achievable"
    );
    for spec in specs {
        for variant in SystemVariant::ALL {
            let r = run_workload(variant, spec.clone(), RunConfig::default());
            println!(
                "{:<12} {:<24} {:>12.2} {:>12.1} {:>9.1} GB/s",
                r.workload,
                variant.label(),
                r.ledger.mem_bytes_per_client_byte(),
                fidr::hwsim::Projection::cores_needed(
                    &r.ledger,
                    &platform,
                    platform.target_throughput
                ),
                r.achievable_gbps(&platform),
            );
        }
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let ops = usize_flag(flags, "ops", 15_000)?;
    let wl = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("write-h");
    let spec = workload_by_name(wl, ops).ok_or("unknown workload")?;
    let var = flags.get("variant").map(String::as_str).unwrap_or("full");
    let variant = variant_by_name(var).ok_or("unknown variant")?;
    let faults = faults_flag(flags)?;
    let workers = usize_flag(flags, "workers", 1)?;
    let cache_shards = usize_flag(flags, "cache-shards", 1)?;
    let tiered = tiered_flag(flags)?;
    let metrics_out = output_flag(flags, &["metrics-out", "out"])?;
    let spans_out = output_flag(flags, &["spans-out"])?;

    // Tracing is always on for `stats`: the critical-path breakdown below
    // is derived from spans.
    let r = run_workload(
        variant,
        spec,
        RunConfig {
            faults,
            workers,
            cache_shards,
            tiered,
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        },
    );
    let json = r.metrics.to_json();
    let json_to_stdout = metrics_out.is_none();
    match &metrics_out {
        Some(path) => {
            write_output(path, &json)?;
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &spans_out {
        let events = export_spans(path, &r.spans)?;
        eprintln!("wrote {path} ({events} span events)");
    }
    // Keep stdout machine-readable: when the metrics JSON went to stdout,
    // the human-facing breakdown goes to stderr.
    let breakdown = format!("{}", r.critical_path);
    if json_to_stdout {
        eprint!("{breakdown}");
    } else {
        print!("{breakdown}");
    }
    Ok(())
}

fn cmd_spans(flags: &HashMap<String, String>) -> Result<(), String> {
    let ops = usize_flag(flags, "ops", 2_000)?;
    let wl = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("write-h");
    let spec = workload_by_name(wl, ops).ok_or("unknown workload")?;
    let var = flags.get("variant").map(String::as_str).unwrap_or("full");
    let variant = variant_by_name(var).ok_or("unknown variant")?;
    let faults = faults_flag(flags)?;
    let workers = usize_flag(flags, "workers", 1)?;
    let cache_shards = usize_flag(flags, "cache-shards", 1)?;
    let tiered = tiered_flag(flags)?;

    let r = run_workload(
        variant,
        spec,
        RunConfig {
            faults,
            workers,
            cache_shards,
            tiered,
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        },
    );
    let breakdown = format!("{}", r.critical_path);
    match output_flag(flags, &["spans-out"])? {
        Some(path) => {
            let events = export_spans(&path, &r.spans)?;
            println!(
                "wrote {path}: {events} span events, {} dropped by the ring",
                r.metrics.counter("trace.dropped_spans").unwrap_or(0)
            );
            println!("open it in https://ui.perfetto.dev or chrome://tracing\n");
            print!("{breakdown}");
        }
        None => {
            // Spans JSON on stdout; the human-facing breakdown on stderr.
            let json = chrome_trace_json(&r.spans);
            validate_chrome_trace(&json).map_err(|e| format!("internal: bad trace JSON: {e}"))?;
            print!("{json}");
            eprint!("{breakdown}");
        }
    }
    Ok(())
}

fn cmd_report(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::fmt::Write as _;
    let ops = usize_flag(flags, "ops", 15_000)?;
    let platform = PlatformSpec::default();
    let mut md = String::new();
    let _ = writeln!(md, "# FIDR measured results ({ops} requests per run)\n");

    let _ = writeln!(
        md,
        "| Workload | Variant | mem B/B | cores@75 GB/s | achievable | dedup | cache hit |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for spec in WorkloadSpec::table3(ops) {
        for variant in SystemVariant::ALL {
            let r = run_workload(variant, spec.clone(), RunConfig::default());
            let _ = writeln!(
                md,
                "| {} | {} | {:.2} | {:.1} | {:.1} GB/s | {:.1}% | {:.1}% |",
                r.workload,
                variant.label(),
                r.ledger.mem_bytes_per_client_byte(),
                fidr::hwsim::Projection::cores_needed(
                    &r.ledger,
                    &platform,
                    platform.target_throughput
                ),
                r.achievable_gbps(&platform),
                r.reduction.dedup_ratio() * 100.0,
                r.cache.hit_rate() * 100.0,
            );
        }
    }

    let ssd = SsdSpec::default();
    let _ = writeln!(
        md,
        "\nBatched 4-KB read latency: baseline {:.0} us -> FIDR {:.0} us.",
        LatencyModel::baseline_read(&ssd).total().as_secs_f64() * 1e6,
        LatencyModel::fidr_read(&ssd).total().as_secs_f64() * 1e6,
    );

    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &md).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
        _ => print!("{md}"),
    }
    Ok(())
}

fn cmd_latency() {
    let ssd = SsdSpec::default();
    for (name, model) in [
        ("baseline read", LatencyModel::baseline_read(&ssd)),
        ("FIDR read", LatencyModel::fidr_read(&ssd)),
        ("write commit", LatencyModel::write_commit()),
    ] {
        println!("{name}:");
        for stage in &model.stages {
            println!(
                "  {:<44} {:>7.0} us",
                stage.name,
                stage.time.as_secs_f64() * 1e6
            );
        }
        println!(
            "  {:<44} {:>7.0} us\n",
            "TOTAL",
            model.total().as_secs_f64() * 1e6
        );
    }
}

fn cmd_cost(flags: &HashMap<String, String>) -> Result<(), String> {
    let capacity_tb = f64_flag(flags, "capacity-tb", 500.0)?;
    let throughput = f64_flag(flags, "throughput", 75.0)?;
    let effective_gb = capacity_tb * 1000.0;
    let model = CostModel::default();
    let fidr = model.fidr(Scenario {
        effective_gb,
        throughput_gbps: throughput,
        reduction_factor: 4.0,
        reduced_fraction: 1.0,
        cores: 0.29 * throughput,
        cache_dram_gb: 100.0,
    });
    println!(
        "FIDR at {capacity_tb:.0} TB / {throughput:.0} GB/s: ${:.0} total (${:.3}/GB), saving {:.1}% vs no reduction",
        fidr.total(),
        fidr.total() / effective_gb,
        model.saving(&fidr, effective_gb) * 100.0
    );
    println!(
        "  data SSD ${:.0} | table SSD ${:.0} | DRAM ${:.0} | CPU ${:.0} | FPGA ${:.0}",
        fidr.data_ssd, fidr.table_ssd, fidr.dram, fidr.cpu, fidr.fpga
    );
    Ok(())
}

fn cmd_trace(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let path = positional.first().ok_or("missing trace file")?;
    let chunk_kb = usize_flag(flags, "chunk-kb", 32)?;
    if !chunk_kb.is_multiple_of(4) || chunk_kb == 0 {
        return Err("--chunk-kb must be a positive multiple of 4".into());
    }
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let records = parse_trace(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    let writes = to_block_writes(&records);
    println!("{} records, {} block writes", records.len(), writes.len());
    let fine = replay_chunking(&writes, 1, 1024);
    let coarse = replay_chunking(&writes, chunk_kb / 4, 1024);
    println!(
        "4-KB chunking:  {} IO blocks, dedup {:.1}%",
        fine.total_io_blocks(),
        fine.dedup_ratio() * 100.0
    );
    println!(
        "{chunk_kb}-KB chunking: {} IO blocks, dedup {:.1}% -> {:.1}x more IO",
        coarse.total_io_blocks(),
        coarse.dedup_ratio() * 100.0,
        coarse.total_io_blocks() as f64 / fine.total_io_blocks().max(1) as f64
    );

    let faults = faults_flag(flags)?;
    let replay_metrics = output_flag(flags, &["metrics-out"])?;
    let replay_spans = output_flag(flags, &["spans-out"])?;
    if replay_metrics.is_some() || replay_spans.is_some() || !faults.is_inert() {
        // Replay the trace through a full FIDR system (synthetic chunk
        // contents derived from each record's content tag, as in the
        // trace-driven integration tests) and snapshot its metrics —
        // under the requested fault schedule, if any.
        let gen = ContentGenerator::new(0.5);
        let mut sys = FidrSystem::new(FidrConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 128 << 10,
            hash_batch: 16,
            faults,
            workers: usize_flag(flags, "workers", 1)?,
            cache_shards: usize_flag(flags, "cache-shards", 1)?,
            trace: if replay_spans.is_some() {
                TraceConfig::enabled()
            } else {
                TraceConfig::default()
            },
            ..FidrConfig::default()
        });
        let mut written = std::collections::HashSet::new();
        for rec in &records {
            for b in 0..u64::from(rec.blocks) {
                let lba = Lba(rec.lba + b);
                match rec.op {
                    TraceOp::Write => {
                        let content = rec.content.wrapping_add(b);
                        sys.write(lba, bytes::Bytes::from(gen.chunk(content, 4096)))
                            .map_err(|e| format!("trace replay write: {e}"))?;
                        written.insert(lba);
                    }
                    TraceOp::Read => {
                        if written.contains(&lba) {
                            sys.read(lba)
                                .map_err(|e| format!("trace replay read: {e}"))?;
                        }
                    }
                }
            }
        }
        sys.flush()
            .map_err(|e| format!("trace replay flush: {e}"))?;
        let metrics = sys.metrics();
        if !faults.is_inert() {
            let count = |name: &str| metrics.counter(name).unwrap_or(0);
            let injected: u64 = fidr::faults::FaultSite::ALL
                .iter()
                .map(|s| count(&format!("faults.{}.injected", s.slug())))
                .sum();
            println!(
                "fault replay: {injected} faults injected; {} device retries, \
                 {} read repairs ({} unrecovered), {} failed seals, hw-engine degraded: {}",
                count("ssd.data.retry.attempts") + count("ssd.table.retry.attempts"),
                count("retry.read_repair.repaired"),
                count("retry.read_repair.unrecovered"),
                count("retry.seal.failures"),
                count("degraded.hw_engine.count") != 0,
            );
            let scrubbed = sys
                .verify_integrity()
                .map_err(|e| format!("post-fault scrub: {e}"))?;
            println!("post-fault scrub: {scrubbed} chunks verified clean");
        }
        if let Some(out) = &replay_metrics {
            write_output(out, &metrics.to_json())?;
            println!("wrote {out}");
        }
        if let Some(out) = &replay_spans {
            let events = export_spans(out, &sys.tracer().spans())?;
            println!("wrote {out} ({events} span events)");
        }
    }
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let port = u16_flag(flags, "port", 0)?;
    let conns_limit = opt_positive_u64_flag(flags, "conns-limit")?;
    let queue = usize_flag(flags, "queue", 64)?;
    let sample_ms = u64_flag(flags, "sample-ms", 1000)?;
    let metrics_out = output_flag(flags, &["metrics-out"])?;
    let cfg = ServerConfig {
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
        system: FidrConfig {
            workers: usize_flag(flags, "workers", 1)?,
            cache_shards: usize_flag(flags, "cache-shards", 1)?,
            tiered: tiered_flag(flags)?,
            ..FidrConfig::default()
        },
        queue_capacity: queue,
        conns_limit,
        sample_ms,
        node_id: u64_flag(flags, "node-id", 0)?,
        gc_every: u64_flag(flags, "gc-every", 0)?,
        gc_threshold: f64_flag(flags, "gc-threshold", 0.5)?,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();
    println!("listening on {addr}");
    if let Some(path) = flags.get("port-file").filter(|p| !p.is_empty()) {
        // Atomic publish (temp file + rename): readers either see no
        // file yet or a whole `host:port` line, never a torn write.
        fidr::server::write_port_file(std::path::Path::new(path), addr)
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if conns_limit.is_none() {
        println!("serving until killed (pass --conns-limit N for a self-draining run)");
    }
    let metrics = handle.wait().map_err(|e| format!("drain: {e}"))?;
    let count = |name: &str| metrics.counter(name).unwrap_or(0);
    println!(
        "drained: {} connections, {} frames decoded, {} rejected, \
         {} writes / {} reads / {} deletes served, {} op failures, {} gc passes",
        count("server.connections.accepted.count"),
        count("server.frames.decoded.count"),
        count("server.frames.rejected.count"),
        count("server.ops.write.count"),
        count("server.ops.read.count"),
        count("server.ops.delete.count"),
        count("server.ops.failed.count"),
        count("server.gc.passes.count"),
    );
    if let Some(path) = &metrics_out {
        write_output(path, &metrics.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes = list_flag(flags, "nodes")?;
    let conns = usize_flag(flags, "conns", 4)?;
    let ops = usize_flag(flags, "ops", 200)?;
    let seed = u64_flag(flags, "seed", 42)?;
    let mode = flags.get("mode").map(String::as_str).unwrap_or("traffic");
    let open_spec = fidr::workload::OpenLoopSpec {
        tenants: u64_flag(flags, "tenants", 8)?.max(1),
        ops: ops as u64,
        rate: f64_flag(flags, "rate", 0.0)?,
        zipf_s: f64_flag(flags, "zipf", 1.0)?,
        seed,
    };
    let churn_spec = churn_spec_from_flags(flags, 8, seed)?;
    let shift = fidr::core::DEFAULT_STREAM_SHIFT;
    // One device factory covering both topologies: a single node behind
    // --addr, or a consistent-hash fleet behind --nodes. Prefer the
    // fleet's installed map (its ids survive reshards); fall back to
    // the list-derived bootstrap map for an uninstalled fleet.
    let cluster_map = if nodes.is_empty() {
        None
    } else {
        Some(fetch_current_map(&nodes).map_or_else(
            || map_from_addrs(&nodes).map_err(|e| format!("bad --nodes: {e}")),
            Ok,
        )?)
    };
    let report = match mode {
        "traffic" => match &cluster_map {
            Some(map) => run_cluster_traffic(map, conns, ops, seed),
            None => run_traffic(addr_flag(flags)?, conns, ops, seed),
        },
        "open" => match &cluster_map {
            Some(map) => run_open_loop(
                || ClusterClient::connect(map.clone()),
                conns,
                open_spec,
                shift,
            ),
            None => {
                let addr = addr_flag(flags)?;
                run_open_loop(|| StorageClient::connect(addr), conns, open_spec, shift)
            }
        },
        "verify" => match &cluster_map {
            Some(map) => ClusterClient::connect(map.clone())
                .and_then(|mut dev| run_verify(&mut dev, open_spec, shift)),
            None => {
                let addr = addr_flag(flags)?;
                StorageClient::connect(addr)
                    .and_then(|mut dev| run_verify(&mut dev, open_spec, shift))
            }
        },
        "churn" => match &cluster_map {
            Some(map) => ClusterClient::connect(map.clone())
                .and_then(|mut dev| run_churn(&mut dev, churn_spec, shift)),
            None => {
                let addr = addr_flag(flags)?;
                StorageClient::connect(addr)
                    .and_then(|mut dev| run_churn(&mut dev, churn_spec, shift))
            }
        },
        "churn-verify" => match &cluster_map {
            Some(map) => ClusterClient::connect(map.clone())
                .and_then(|mut dev| run_churn_verify(&mut dev, churn_spec, shift)),
            None => {
                let addr = addr_flag(flags)?;
                StorageClient::connect(addr)
                    .and_then(|mut dev| run_churn_verify(&mut dev, churn_spec, shift))
            }
        },
        other => {
            return Err(format!(
                "unknown --mode {other:?} (traffic|open|verify|churn|churn-verify)"
            ))
        }
    }
    .map_err(|e| format!("client {mode}: {e}"))?;
    println!(
        "{} connections, mode {}: {} writes acked, {} deletes acked, {} reads verified, \
         {} mismatches",
        conns, mode, report.writes, report.deletes, report.reads, report.verify_failures
    );
    // A verify failure is a hard, loud, non-zero exit — never a counter
    // a pipeline could scroll past.
    report
        .ensure_verified()
        .map_err(|e| e.to_string())
        .map(|_| ())
}

/// Parses the churn-schedule flags shared by `fidr client --mode churn`
/// and `fidr gc`.
fn churn_spec_from_flags(
    flags: &HashMap<String, String>,
    default_tenants: u64,
    seed: u64,
) -> Result<fidr::workload::ChurnSpec, String> {
    let delete_pct = u64_flag(flags, "delete-pct", 40)?;
    if delete_pct > 100 {
        return Err(format!(
            "--delete-pct is a percent (0..=100), got {delete_pct}"
        ));
    }
    Ok(fidr::workload::ChurnSpec {
        tenants: u64_flag(flags, "tenants", default_tenants)?.max(1),
        blocks_per_tenant: u64_flag(flags, "blocks", 64)?.max(1),
        rounds: u64_flag(flags, "rounds", 3)?,
        delete_pct: delete_pct as u8,
        seed,
    })
}

fn cmd_gc(flags: &HashMap<String, String>) -> Result<(), String> {
    use fidr::workload::{churn_tag, ChurnKind, ChurnSchedule};
    let seed = u64_flag(flags, "seed", 42)?;
    let spec = churn_spec_from_flags(flags, 4, seed)?;
    let threshold = f64_flag(flags, "threshold", 0.5)?;
    let metrics_out = output_flag(flags, &["metrics-out"])?;
    let shift = fidr::core::DEFAULT_STREAM_SHIFT;
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        workers: usize_flag(flags, "workers", 1)?,
        ..FidrConfig::default()
    });
    // Age the store in-process: write, overwrite, delete.
    let schedule = ChurnSchedule::generate(spec);
    for op in schedule.ops() {
        let lba = Lba((op.tenant << shift) | op.offset);
        match op.kind {
            ChurnKind::Write { round } => {
                let tag = churn_tag(spec.seed, op.tenant, op.offset, round);
                sys.write(lba, bytes::Bytes::from(gen.chunk(tag, 4096)))
                    .map_err(|e| format!("churn write: {e}"))?;
            }
            ChurnKind::Delete => sys.delete(lba).map_err(|e| format!("churn delete: {e}"))?,
        }
    }
    sys.flush().map_err(|e| format!("flush: {e}"))?;
    let report = sys
        .collect_garbage(threshold)
        .map_err(|e| format!("gc: {e}"))?;
    println!(
        "churn: {} writes, {} deletes over {} tenants x {} blocks ({} rounds)",
        schedule.ops().len() as u64 - schedule.deletes(),
        schedule.deletes(),
        spec.tenants,
        spec.blocks_per_tenant,
        spec.rounds,
    );
    println!(
        "gc: reclaimed {} dead chunks, compacted {} containers ({} survivors moved), \
         freed {} bytes at a copy cost of {} bytes",
        report.reclaimed_pbns,
        report.compacted_containers,
        report.moved_chunks,
        report.freed_bytes,
        report.copied_bytes,
    );
    // Post-GC safety: every survivor must still read back byte-exact.
    let mut mismatches = 0u64;
    for (&(tenant, offset), &round) in schedule.survivors() {
        let got = sys
            .read(Lba((tenant << shift) | offset))
            .map_err(|e| format!("post-gc read: {e}"))?;
        if got != gen.chunk(churn_tag(spec.seed, tenant, offset, round), 4096) {
            mismatches += 1;
        }
    }
    println!(
        "verify: {} survivors read back, {} mismatches",
        schedule.survivors().len(),
        mismatches,
    );
    if let Some(path) = &metrics_out {
        write_output(path, &sys.metrics().to_json())?;
        println!("wrote {path}");
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} survivors read back wrong after gc"));
    }
    if schedule.deletes() > 0 && report.freed_bytes == 0 {
        return Err("churn deleted chunks but gc freed no space".into());
    }
    Ok(())
}

fn cmd_route(flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes = list_flag(flags, "nodes")?;
    // Same map-resolution rule as `fidr client --nodes`: the fleet's
    // installed map wins; the list-derived map bootstraps.
    let map = fetch_current_map(&nodes).map_or_else(
        || map_from_addrs(&nodes).map_err(|e| format!("bad --nodes: {e}")),
        Ok,
    )?;
    let cfg = RouterConfig {
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], u16_flag(flags, "port", 0)?)),
        router: map,
        conns_limit: opt_positive_u64_flag(flags, "conns-limit")?,
    };
    let conns_limit = cfg.conns_limit;
    let handle = Router::spawn(cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();
    println!("routing on {addr} over {} nodes", nodes.len());
    if let Some(path) = flags.get("port-file").filter(|p| !p.is_empty()) {
        fidr::server::write_port_file(std::path::Path::new(path), addr)
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if conns_limit.is_none() {
        println!("routing until killed (pass --conns-limit N for a self-draining run)");
    }
    let report = handle.wait();
    println!(
        "front tier drained: {} connections, {} writes / {} reads routed, \
         {} map requests, {} connection errors",
        report.connections,
        report.writes_routed,
        report.reads_routed,
        report.map_gets,
        report.conn_errors,
    );
    Ok(())
}

/// Asks each node in `addrs` for its installed shard map, returning the
/// first non-empty (generation > 0) one.
fn fetch_current_map(addrs: &[String]) -> Option<fidr::nic::ShardRouter> {
    for addr in addrs {
        let Ok(sock) = addr.parse::<std::net::SocketAddr>() else {
            continue;
        };
        let Ok(mut conn) = StorageClient::connect(sock) else {
            continue;
        };
        if let Ok((generation, doc)) = conn.shard_map(fidr::nic::protocol::ShardMapAction::Get, "")
        {
            if generation > 0 {
                if let Ok(map) = fidr::nic::ShardRouter::decode(&doc) {
                    return Some(map);
                }
            }
        }
    }
    None
}

fn cmd_reshard(flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes = list_flag(flags, "nodes")?;
    let derived = map_from_addrs(&nodes).map_err(|e| format!("bad --nodes: {e}"))?;
    // Prefer the fleet's authoritative map (survives earlier reshards,
    // whose generations the derived bootstrap map knows nothing about);
    // fall back to the derived map for a fleet that has none yet.
    let current = fetch_current_map(&nodes).unwrap_or(derived);
    let join = flags.get("join").filter(|a| !a.is_empty());
    let drain = opt_positive_u64_flag(flags, "drain")?;
    let next = match (join, drain) {
        (Some(addr), None) => {
            let node = fidr::nic::ShardNode {
                id: current.nodes().iter().map(|n| n.id).max().unwrap_or(0) + 1,
                addr: addr.clone(),
            };
            let id = node.id;
            let next = join_node(&current, node).map_err(|e| format!("join: {e}"))?;
            println!("node {id} ({addr}) joined");
            next
        }
        (None, Some(id)) => {
            let next = drain_node(&current, id).map_err(|e| format!("drain: {e}"))?;
            println!("node {id} drained; its blocks rehomed to the survivors");
            next
        }
        (None, None) => {
            // Bare reshard: bootstrap-install the derived map on every
            // node, which also rebalances any keys written before the
            // fleet first agreed on a map.
            push_map(&current).map_err(|e| format!("install: {e}"))?;
            println!("installed the bootstrap map on {} nodes", nodes.len());
            current
        }
        (Some(_), Some(_)) => return Err("--join and --drain are mutually exclusive".into()),
    };
    println!(
        "shard map now at generation {} over {} nodes",
        next.generation(),
        next.nodes().len()
    );
    Ok(())
}

/// Parses the required `--addr HOST:PORT` flag.
fn addr_flag(flags: &HashMap<String, String>) -> Result<std::net::SocketAddr, String> {
    flags
        .get("addr")
        .ok_or("missing --addr")?
        .parse()
        .map_err(|_| "bad --addr (want HOST:PORT)".into())
}

fn cmd_scrape(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = addr_flag(flags)?;
    let format = if bool_flag(flags, "prom")? {
        StatsFormat::Prometheus
    } else {
        StatsFormat::Json
    };
    let out = output_flag(flags, &["out"])?;
    let mut client = StorageClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let body = client.scrape(format).map_err(|e| format!("scrape: {e}"))?;
    let text = String::from_utf8_lossy(&body).into_owned();
    match &out {
        Some(path) => {
            write_output(path, &text)?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_top(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::io::IsTerminal;
    use std::io::Write as _;
    let addr = addr_flag(flags)?;
    let interval_ms = u64_flag(flags, "interval-ms", 1000)?.max(50);
    let iters = u64_flag(flags, "iters", 0)?;
    let mut client = StorageClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    // Redraw-in-place only on a real terminal; piped output gets one
    // frame after another (and is what the smoke tests read).
    let tty = std::io::stdout().is_terminal();
    let mut shown = 0u64;
    loop {
        let body = client
            .scrape(StatsFormat::Json)
            .map_err(|e| format!("scrape: {e}"))?;
        let text = String::from_utf8_lossy(&body);
        let frame = render_top(&text, &addr.to_string())?;
        if tty {
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        let _ = std::io::stdout().flush();
        shown += 1;
        if iters > 0 && shown >= iters {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Renders one `fidr top` frame from a `fidr.timeseries.v1` document.
fn render_top(json: &str, addr: &str) -> Result<String, String> {
    use fidr::trace::Json;
    use std::fmt::Write as _;
    let doc = fidr::trace::parse_json(json).map_err(|e| format!("bad scrape JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
    if schema != "fidr.timeseries.v1" {
        return Err(format!("unexpected scrape schema {schema:?}"));
    }
    let num = |j: &Json, key: &str| j.get(key).and_then(Json::as_num).unwrap_or(0.0);
    let window = doc.get("window").cloned().unwrap_or(Json::Null);
    let totals = doc.get("totals").cloned().unwrap_or(Json::Null);
    let samples = doc.get("samples").and_then(Json::as_arr).unwrap_or(&[]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fidr top — {addr}   up {:.1}s   sample {} ms   samples {}",
        num(&doc, "uptime_ms") / 1000.0,
        num(&doc, "sample_ms"),
        samples.len(),
    );
    let _ = writeln!(
        out,
        "  {:>10.1} ops/s   {:>8.4} GB/s   queue {:>3}   latency p50 {:.0} us / p99 {:.0} us",
        num(&window, "ops_per_sec"),
        num(&window, "gbps"),
        num(&window, "queue_depth"),
        num(&window, "latency_p50_us"),
        num(&window, "latency_p99_us"),
    );
    let _ = writeln!(
        out,
        "  cache hit {:>5.1}%   dedup ratio {:.3}   writes {}   reads {}   deferred {}",
        num(&window, "hit_ratio") * 100.0,
        num(&totals, "dedup_ratio"),
        num(&totals, "writes") as u64,
        num(&totals, "reads") as u64,
        num(&totals, "deferred") as u64,
    );
    let streams = doc.get("streams").and_then(Json::as_arr).unwrap_or(&[]);
    if !streams.is_empty() {
        let _ = writeln!(
            out,
            "\n  {:<8} {:>10} {:>10} {:>14}",
            "stream", "writes", "reads", "bytes"
        );
        for s in streams {
            let _ = writeln!(
                out,
                "  {:<8} {:>10} {:>10} {:>14}",
                s.get("id").and_then(Json::as_str).unwrap_or("?"),
                num(s, "writes") as u64,
                num(s, "reads") as u64,
                num(s, "bytes") as u64,
            );
        }
    }
    let exemplars = doc.get("exemplars").and_then(Json::as_arr).unwrap_or(&[]);
    if !exemplars.is_empty() {
        let _ = writeln!(out, "\n  slow exemplars (latency over the live p99):");
        for e in exemplars {
            let spans = e
                .get("spans")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|s| {
                    format!(
                        "{}:{}ns",
                        s.get("name").and_then(Json::as_str).unwrap_or("?"),
                        num(s, "dur_ns") as u64
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "  #{} {} lba={} {:.0} us (threshold {:.0} us){}{}",
                num(e, "seq") as u64,
                e.get("op").and_then(Json::as_str).unwrap_or("?"),
                num(e, "lba") as u64,
                num(e, "latency_us"),
                num(e, "threshold_us"),
                if spans.is_empty() { "" } else { "  spans " },
                spans,
            );
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        println!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let (positional, flags) = parse_flags(&args[1..]);
    let result = if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        Ok(())
    } else if allowed_flags(cmd).is_none() {
        Err(format!("unknown command `{cmd}`"))
    } else {
        // Every subcommand validates its flag set up front: a typo'd or
        // misplaced flag is a usage error naming the flag, never a
        // silent ignore. Only `trace` takes a positional argument.
        reject_unknown_flags(cmd, &flags)
            .and_then(|()| match (cmd.as_str(), positional.first()) {
                ("trace", _) | (_, None) => Ok(()),
                (_, Some(extra)) => Err(format!("unexpected argument {extra:?} for `fidr {cmd}`")),
            })
            .and_then(|()| match cmd.as_str() {
                "run" => cmd_run(&flags),
                "compare" => cmd_compare(&flags),
                "stats" => cmd_stats(&flags),
                "spans" => cmd_spans(&flags),
                "latency" => {
                    cmd_latency();
                    Ok(())
                }
                "cost" => cmd_cost(&flags),
                "report" => cmd_report(&flags),
                "trace" => cmd_trace(&positional, &flags),
                "serve" => cmd_serve(&flags),
                "client" => cmd_client(&flags),
                "gc" => cmd_gc(&flags),
                "scrape" => cmd_scrape(&flags),
                "top" => cmd_top(&flags),
                "route" => cmd_route(&flags),
                "reshard" => cmd_reshard(&flags),
                _ => unreachable!("allowed_flags() gated the command list"),
            })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
