//! Experiment runner: drives a workload through a system variant and
//! collects everything the paper's figures need.
//!
//! The four variants correspond to the staged bars of Figures 12 and 14:
//! the CIDR-extended baseline, FIDR's NIC offload + P2P with the software
//! table cache still on the CPU, the Cache HW-Engine with the
//! single-update tree, and full FIDR with concurrent updates.

use fidr_baseline::{BaselineConfig, BaselineSystem, PredictorStats};
use fidr_cache::{CacheStats, HwTreeStats};
use fidr_core::{CacheMode, FidrConfig, FidrError, FidrSystem, TieredDedupConfig};
use fidr_faults::{FaultPlan, RetryPolicy};
use fidr_hwsim::{CostParams, Ledger, PlatformSpec, Projection, TimeModel};
use fidr_metrics::MetricsSnapshot;
use fidr_tables::ReductionStats;
use fidr_trace::{CriticalPathReport, SpanRecord, TraceConfig};
use fidr_workload::{Request, Workload, WorkloadSpec};

/// Which system architecture to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemVariant {
    /// The CIDR-extended baseline (§2.3).
    Baseline,
    /// FIDR ideas (a)+(b): NIC hashing + P2P, software table cache.
    FidrNicP2p,
    /// Plus the Cache HW-Engine with a single-update tree.
    FidrHwCacheSingleUpdate,
    /// Full FIDR: concurrent (4-slot) speculative tree updates.
    FidrFull,
}

impl SystemVariant {
    /// All variants in Figure 14's bar order.
    pub const ALL: [SystemVariant; 4] = [
        SystemVariant::Baseline,
        SystemVariant::FidrNicP2p,
        SystemVariant::FidrHwCacheSingleUpdate,
        SystemVariant::FidrFull,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SystemVariant::Baseline => "Baseline (CIDR-ext)",
            SystemVariant::FidrNicP2p => "FIDR NIC+P2P",
            SystemVariant::FidrHwCacheSingleUpdate => "FIDR +HW cache (1 upd)",
            SystemVariant::FidrFull => "FIDR full (4 upd)",
        }
    }
}

/// Sizing knobs shared by every run of one experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Table-cache lines (the paper caches 2.8 % of the table).
    pub cache_lines: usize,
    /// Hash-PBN buckets on the table SSDs.
    pub table_buckets: u64,
    /// Container seal threshold in bytes.
    pub container_threshold: usize,
    /// NIC hash batch (FIDR variants).
    pub hash_batch: usize,
    /// Per-operation cost constants (default: paper-calibrated).
    pub cost: CostParams,
    /// Seeded fault schedule injected into the device models (inert by
    /// default; see `fidr_faults::FaultPlan::parse`).
    pub faults: FaultPlan,
    /// Bounded-retry policy for device faults and checksum re-reads.
    pub retry: RetryPolicy,
    /// Per-request span tracing (disabled by default; enable to fill
    /// [`RunReport::spans`] and [`RunReport::critical_path`]).
    pub trace: TraceConfig,
    /// Worker threads for the per-socket batch pipeline (1 = serial).
    /// Modelled metrics are byte-identical for any worker count.
    pub workers: usize,
    /// Hash-prefix shards of the table cache (1 = unsharded).
    pub cache_shards: usize,
    /// Temperature-tiered admission with deferred dedup for cold
    /// streams (`None` = flat inline dedup for every write). FIDR
    /// variants only; the baseline ignores it.
    pub tiered: Option<TieredDedupConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cache_lines: 4096,
            table_buckets: 1 << 17,
            container_threshold: 4 << 20,
            hash_batch: 64,
            cost: CostParams::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            trace: TraceConfig::default(),
            workers: 1,
            cache_shards: 1,
            tiered: None,
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Variant that ran.
    pub variant: SystemVariant,
    /// Workload name.
    pub workload: String,
    /// Resource ledger.
    pub ledger: Ledger,
    /// Reduction outcomes.
    pub reduction: ReductionStats,
    /// Table-cache counters.
    pub cache: CacheStats,
    /// HW-tree counters, when the Cache HW-Engine ran.
    pub hwtree: Option<HwTreeStats>,
    /// HW-tree throughput ceiling in bytes/s at the default platform's
    /// FPGA DRAM bandwidth, when the engine ran.
    pub hwtree_ceiling: Option<f64>,
    /// Predictor counters (baseline only).
    pub predictor: Option<PredictorStats>,
    /// Per-stage metrics snapshot (`fidr.metrics.v1` schema; see
    /// `docs/OBSERVABILITY.md`).
    pub metrics: MetricsSnapshot,
    /// Completed spans in modelled time, oldest first (empty unless
    /// [`RunConfig::trace`] enabled tracing; bounded by the ring).
    pub spans: Vec<SpanRecord>,
    /// Per-op-class critical-path breakdown accumulated at span close
    /// (sees every op even when the span ring drops).
    pub critical_path: CriticalPathReport,
}

impl RunReport {
    /// Projects the achievable throughput on `platform` (§7.5's method),
    /// folding in the HW-tree ceiling when present.
    pub fn projection(&self, platform: &PlatformSpec) -> Projection {
        let mut extra = Vec::new();
        if let Some(ceiling) = self.hwtree_ceiling {
            extra.push(("cache HW-engine".to_string(), ceiling));
        }
        Projection::project(&self.ledger, platform, &extra)
    }

    /// Achievable throughput in GB/s on `platform`.
    pub fn achievable_gbps(&self, platform: &PlatformSpec) -> f64 {
        self.projection(platform).achievable / 1e9
    }

    /// Converts this run's measured per-chunk resource demands into a
    /// tandem discrete-event pipeline on `platform`: one station per
    /// shared resource, each with service time `demand / capacity`. The
    /// pipeline's saturation throughput equals the §7.5 analytic
    /// projection by construction, so driving it cross-checks that the
    /// projection composes (and exposes the latency the analytic model
    /// cannot see).
    pub fn to_write_pipeline(&self, platform: &PlatformSpec) -> fidr_hwsim::des::PipelineSim {
        use fidr_hwsim::des::Station;
        use std::time::Duration;

        let chunks = (self.ledger.client_bytes() / 4096).max(1) as f64;
        let per_chunk = |total: f64| total / chunks;
        let service = |demand: f64, capacity: f64| Duration::from_secs_f64(demand / capacity);

        let mut stations = vec![
            Station::new(
                "host memory",
                service(per_chunk(self.ledger.mem_total() as f64), platform.mem_bw),
            ),
            Station::new(
                "CPU",
                service(
                    per_chunk(self.ledger.cpu_total() as f64),
                    platform.cpu_capacity(),
                ),
            ),
            Station::new(
                "PCIe root complex",
                service(
                    per_chunk(self.ledger.root_complex_bytes() as f64),
                    platform.pcie_bw,
                ),
            ),
            Station::new(
                "table SSDs",
                service(
                    per_chunk(
                        (self.ledger.table_ssd_read_bytes + self.ledger.table_ssd_write_bytes)
                            as f64,
                    ),
                    platform.table_ssd_bw,
                ),
            ),
            Station::new(
                "data SSDs",
                service(
                    per_chunk(
                        (self.ledger.data_ssd_read_bytes + self.ledger.data_ssd_write_bytes) as f64,
                    ),
                    platform.data_ssd_bw,
                ),
            ),
        ];
        if let Some(ceiling) = self.hwtree_ceiling {
            stations.push(Station::new(
                "cache HW-engine",
                Duration::from_secs_f64(4096.0 / ceiling),
            ));
        }
        // Zero-service stations would break nothing but add noise.
        stations.retain(|s| s.service > Duration::ZERO);
        fidr_hwsim::des::PipelineSim::new(stations)
    }

    /// Deterministic modelled run time in nanoseconds under `time`: host
    /// software time from the ledger plus device service times for the
    /// table/data SSD bytes, hashing, compression and NIC buffering this
    /// run performed. A serial-service aggregate (no overlap), so it is a
    /// stable per-seed scalar — use it wherever a throughput number must
    /// not depend on wall clock.
    pub fn modelled_ns(&self, time: &TimeModel) -> u64 {
        let l = &self.ledger;
        let table_bytes = l.table_ssd_read_bytes + l.table_ssd_write_bytes;
        let table_ios = table_bytes.div_ceil(fidr_tables::BUCKET_BYTES as u64);
        let data_bytes = l.data_ssd_read_bytes + l.data_ssd_write_bytes;
        time.host_ns(l)
            + time.table_ssd_ns(table_bytes, table_ios)
            + time.data_ssd_ns(data_bytes, self.reduction.containers_sealed)
            + time.hash_ns(l.client_bytes(), 1)
            + time.compress_ns(self.reduction.unique_chunks * 4096)
            + time.nic_ns(l.client_bytes())
    }
}

/// Aggregate result of a multi-socket (sharded) run.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<RunReport>,
    /// Wall-clock seconds for the slowest shard (shards run in parallel).
    /// Nondeterministic — a host-load diagnostic only; derive throughput
    /// claims from [`modelled_gbps`](ShardedReport::modelled_gbps).
    pub wall_seconds: f64,
}

impl ShardedReport {
    /// Aggregate achievable throughput: the paper treats sockets as
    /// independent (§3.2: "each socket has independent CPU cores,
    /// independent memory, and IO buses"), so capacities add.
    pub fn aggregate_gbps(&self, platform: &PlatformSpec) -> f64 {
        self.shards
            .iter()
            .map(|r| r.achievable_gbps(platform))
            .sum()
    }

    /// Modelled run time: the slowest shard's [`RunReport::modelled_ns`]
    /// under `time` (shards run in parallel). Deterministic per seed.
    pub fn modelled_seconds(&self, time: &TimeModel) -> f64 {
        self.shards
            .iter()
            .map(|r| r.modelled_ns(time))
            .max()
            .unwrap_or(0) as f64
            / 1e9
    }

    /// Deterministic throughput in GB/s: total client bytes over the
    /// slowest shard's modelled time. The replacement for the old
    /// wall-clock `functional_gbps` wherever a reproducible number is
    /// needed (tests, committed benchmark snapshots).
    pub fn modelled_gbps(&self, time: &TimeModel) -> f64 {
        let seconds = self.modelled_seconds(time);
        if seconds <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self.shards.iter().map(|r| r.ledger.client_bytes()).sum();
        bytes as f64 / seconds / 1e9
    }

    /// Functional wall-clock throughput of this process (real bytes
    /// hashed, deduplicated and compressed per second). Depends on host
    /// load and scheduling — treat as a diagnostic, not a result.
    pub fn functional_gbps(&self) -> f64 {
        let bytes: u64 = self.shards.iter().map(|r| r.ledger.client_bytes()).sum();
        bytes as f64 / self.wall_seconds / 1e9
    }
}

/// Derives shard `i`'s workload seed from the run's base seed with a
/// SplitMix64 finalizer over the (seed, shard) pair. Shard 0 keeps the
/// base seed, so a 1-shard run reproduces the direct run exactly.
///
/// The previous striping (`seed + i * 0x9E37_79B9`) used a 32-bit
/// constant, so base seed `s + 0x9E37_79B9`'s shard 0 collided with base
/// seed `s`'s shard 1 — adjacent experiment seeds silently shared client
/// streams. The full-width mix makes shard-seed sets of nearby base
/// seeds disjoint (`splitmix64` is a bijection, so two shards of one run
/// can never collide either).
pub fn shard_seed(base: u64, shard: usize) -> u64 {
    if shard == 0 {
        return base;
    }
    fidr_hash::splitmix64(base.wrapping_add(fidr_hash::splitmix64(shard as u64)))
}

/// Runs `spec` across `shards` independent sockets in parallel — each
/// socket serves its own client population of `spec.ops` requests with
/// its own tables, cache and ledger, exactly the paper's multi-socket
/// model (§3.2: per-socket resources are independent).
///
/// # Panics
///
/// Panics if `shards` is zero or a shard's pipeline errors.
pub fn run_workload_sharded(
    variant: SystemVariant,
    spec: WorkloadSpec,
    run: RunConfig,
    shards: usize,
) -> ShardedReport {
    assert!(shards > 0, "need at least one shard");
    let started = std::time::Instant::now();
    let reports: Vec<RunReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let mut shard_spec = spec.clone();
                // Distinct seeds stripe the work; each shard serves its
                // own slice of clients.
                shard_spec.seed = shard_seed(spec.seed, i);
                shard_spec.name = format!("{}[shard {i}]", spec.name);
                scope.spawn(move || run_workload(variant, shard_spec, run))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    ShardedReport {
        shards: reports,
        wall_seconds: started.elapsed().as_secs_f64().max(1e-9),
    }
}

/// Runs `spec` through `variant` and reports the measurements.
///
/// # Panics
///
/// Panics if the storage pipeline reports an error (sizing in
/// [`RunConfig`] should make the tables large enough) or read-back
/// verification fails.
pub fn run_workload(variant: SystemVariant, spec: WorkloadSpec, run: RunConfig) -> RunReport {
    let workload_name = spec.name.clone();
    match variant {
        SystemVariant::Baseline => {
            let mut sys = BaselineSystem::new(BaselineConfig {
                cache_lines: run.cache_lines,
                table_buckets: run.table_buckets,
                container_threshold: run.container_threshold,
                cost: run.cost,
                faults: run.faults,
                retry: run.retry,
                trace: run.trace,
                workers: run.workers,
                cache_shards: run.cache_shards,
                ..BaselineConfig::default()
            });
            // With workers the baseline batches consecutive writes (up to
            // the FIDR hash-batch size, for comparability) so hashing and
            // compression precompute on the pool; reads flush the pending
            // batch first to preserve program order.
            let mut pending: Vec<(fidr_chunk::Lba, bytes::Bytes)> = Vec::new();
            for req in Workload::new(spec) {
                match req {
                    Request::Write { lba, data } => {
                        if run.workers > 1 {
                            pending.push((lba, data));
                            if pending.len() >= run.hash_batch.max(1) {
                                sys.write_batch(std::mem::take(&mut pending))
                                    .expect("baseline write");
                            }
                        } else {
                            sys.write(lba, data).expect("baseline write");
                        }
                    }
                    Request::Read { lba } => {
                        if !pending.is_empty() {
                            sys.write_batch(std::mem::take(&mut pending))
                                .expect("baseline write");
                        }
                        sys.read(lba).expect("baseline read");
                    }
                }
            }
            if !pending.is_empty() {
                sys.write_batch(pending).expect("baseline write");
            }
            sys.flush().expect("baseline flush");
            let metrics = sys.metrics();
            RunReport {
                variant,
                workload: workload_name,
                ledger: sys.ledger().clone(),
                reduction: sys.stats(),
                cache: sys.cache_stats(),
                hwtree: None,
                hwtree_ceiling: None,
                predictor: Some(sys.predictor_stats()),
                metrics,
                spans: sys.tracer().spans(),
                critical_path: sys.tracer().critical_path(),
            }
        }
        _ => run_requests(variant, &workload_name, Workload::new(spec), run),
    }
}

/// Runs an arbitrary request stream through a FIDR variant — the entry
/// point for streams that are not a single [`Workload`], such as the
/// mixed-locality [`fidr_workload::MultiStreamWorkload`] behind the
/// tiered-cache ablation.
///
/// # Panics
///
/// Panics on [`SystemVariant::Baseline`] (the baseline runner needs a
/// [`WorkloadSpec`]; use [`run_workload`]), or if the pipeline errors.
pub fn run_requests<I>(
    variant: SystemVariant,
    workload_name: &str,
    requests: I,
    run: RunConfig,
) -> RunReport
where
    I: IntoIterator<Item = Request>,
{
    let cache_mode = match variant {
        SystemVariant::FidrNicP2p => CacheMode::Software,
        SystemVariant::FidrHwCacheSingleUpdate => CacheMode::HwEngine { update_slots: 1 },
        SystemVariant::FidrFull => CacheMode::HwEngine { update_slots: 4 },
        SystemVariant::Baseline => panic!("run_requests drives FIDR variants only"),
    };
    let mut sys = FidrSystem::new(FidrConfig {
        cache_lines: run.cache_lines,
        table_buckets: run.table_buckets,
        container_threshold: run.container_threshold,
        hash_batch: run.hash_batch,
        cache_mode,
        hwtree_levels: Some(14),
        cost: run.cost,
        faults: run.faults,
        retry: run.retry,
        trace: run.trace,
        workers: run.workers,
        cache_shards: run.cache_shards,
        tiered: run.tiered,
        ..FidrConfig::default()
    });
    for req in requests {
        match req {
            Request::Write { lba, data } => {
                sys.write(lba, data).expect("fidr write");
            }
            Request::Read { lba } => match sys.read(lba) {
                Ok(_) => {}
                Err(FidrError::NotMapped(_)) => unreachable!("reads target written LBAs"),
                Err(e) => panic!("fidr read: {e}"),
            },
        }
    }
    sys.flush().expect("fidr flush");
    let platform = PlatformSpec::default();
    let hwtree = sys.hwtree_stats();
    let hwtree_ceiling = sys.hwtree_throughput(platform.fpga_dram_bw);
    let metrics = sys.metrics();
    RunReport {
        variant,
        workload: workload_name.to_string(),
        ledger: sys.ledger().clone(),
        reduction: sys.stats(),
        cache: sys.cache_stats(),
        hwtree,
        hwtree_ceiling,
        predictor: None,
        metrics,
        spans: sys.tracer().spans(),
        critical_path: sys.tracer().critical_path(),
    }
}
