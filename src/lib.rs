//! # fidr
//!
//! A from-scratch Rust reproduction of **FIDR: A Scalable Storage System
//! for Fine-Grain Inline Data Reduction with Efficient Memory Handling**
//! (Ajdari et al., MICRO-52, 2019): a deduplicating + compressing storage
//! server that offloads hashing to the NIC, moves client data over PCIe
//! peer-to-peer paths that bypass host DRAM, and splits metadata-table
//! caching between an FPGA index engine and host-memory content.
//!
//! This facade crate re-exports the whole workspace and adds the
//! [`experiment`] runner that drives the paper's workloads through either
//! system for the benchmark harness.
//!
//! # Quickstart
//!
//! ```
//! use fidr::core::{FidrConfig, FidrSystem};
//! use fidr::chunk::Lba;
//! use bytes::Bytes;
//!
//! let mut server = FidrSystem::new(FidrConfig::default());
//! server.write(Lba(0), Bytes::from(vec![7u8; 4096]))?;
//! server.flush()?;
//! assert_eq!(server.read(Lba(0))?, vec![7u8; 4096]);
//! println!("host memory bytes per client byte: {:.2}",
//!          server.ledger().mem_bytes_per_client_byte());
//! # Ok::<(), fidr::core::FidrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod experiment;
pub mod router;
pub mod server;

/// The CIDR-extended baseline system (paper §2.3).
pub use fidr_baseline as baseline;
/// Table caching: software B+ tree and the Cache HW-Engine.
pub use fidr_cache as cache;
/// Chunking and address types.
pub use fidr_chunk as chunk;
/// LZ-class compression and content generation.
pub use fidr_compress as compress;
/// The FIDR system itself.
pub use fidr_core as core;
/// Cost and FPGA resource models.
pub use fidr_cost as cost;
/// Seeded fault injection and retry policies.
pub use fidr_faults as faults;
/// SHA-256 and fingerprints.
pub use fidr_hash as hash;
/// Resource ledgers, platform specs and projection.
pub use fidr_hwsim as hwsim;
/// Metrics registry, histograms and snapshots.
pub use fidr_metrics as metrics;
/// The FIDR NIC model and storage protocol.
pub use fidr_nic as nic;
/// NVMe SSD models.
pub use fidr_ssd as ssd;
/// Metadata tables and containers.
pub use fidr_tables as tables;
/// Per-request span tracing, Perfetto export, critical-path analysis.
pub use fidr_trace as trace;
/// Table 3 workload generation.
pub use fidr_workload as workload;

pub use experiment::{
    run_requests, run_workload, run_workload_sharded, shard_seed, RunConfig, RunReport,
    ShardedReport, SystemVariant,
};
