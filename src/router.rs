//! The stateless `fidr route` front tier and the reshard orchestration
//! behind `fidr reshard`.
//!
//! A [`Router`] is a thin proxy: it terminates client connections
//! speaking the §6.2 wire protocol, routes every write/read to the
//! owning node of its [`ShardRouter`] map (one backend
//! [`ClusterClient`] per accepted connection, so backend ordering
//! matches each client's issue order), and answers
//! [`ShardMapAction::Get`] from its own map so clients can discover the
//! topology. It holds **no storage state** — any number of front tiers
//! can run side by side over the same map.
//!
//! Reshard is an orchestration op, not a proxy op: [`join_node`] /
//! [`drain_node`] compute the next map generation and push it to the
//! member nodes, whose own rehome-before-ack handling (see
//! [`crate::server`]) guarantees zero acked-write loss. The front tier
//! refuses Set/Drain frames by closing the connection — traffic must be
//! quiesced (or pointed at a front tier holding the *new* map) before a
//! reshard, and letting any client reshape the cluster mid-flight would
//! break that.

use crate::client::{ClientError, ClusterClient, StorageClient};
use fidr_nic::protocol::{Message, ShardMapAction};
use fidr_nic::{FramedCodec, ShardNode, ShardRouter};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll cadence while idle (the listener is non-blocking so
/// shutdown and conns-limit drain stay responsive).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Configuration of one front-tier instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back with
    /// [`RouterHandle::local_addr`]).
    pub addr: SocketAddr,
    /// The shard map to route by, fixed for this instance's lifetime —
    /// after a reshard, start a front tier holding the new map.
    pub router: ShardRouter,
    /// Auto-drain: once this many connections have been accepted and
    /// all of them closed, [`RouterHandle::wait`] returns. `None`
    /// routes until [`RouterHandle::shutdown`].
    pub conns_limit: Option<u64>,
}

/// What one front-tier instance did, returned by
/// [`RouterHandle::wait`] / [`RouterHandle::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterReport {
    /// Connections accepted.
    pub connections: u64,
    /// Writes routed to a backend node.
    pub writes_routed: u64,
    /// Reads routed to a backend node.
    pub reads_routed: u64,
    /// Shard-map Get requests answered from the local map.
    pub map_gets: u64,
    /// Connections closed on a protocol violation or backend failure.
    pub conn_errors: u64,
}

/// Counters and the shutdown flag shared by the accept loop and every
/// connection thread.
struct RouterShared {
    router: ShardRouter,
    shutdown: AtomicBool,
    connections: AtomicU64,
    active: AtomicU64,
    writes_routed: AtomicU64,
    reads_routed: AtomicU64,
    map_gets: AtomicU64,
    conn_errors: AtomicU64,
}

/// The front tier. [`Router::spawn`] binds, starts the accept loop and
/// returns a [`RouterHandle`].
pub struct Router;

/// Handle to a running [`Router`].
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds `cfg.addr` and starts routing.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; `InvalidInput` on an empty map
    /// (a front tier with nowhere to route is a misconfiguration, not
    /// a server).
    pub fn spawn(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
        if cfg.router.nodes().is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "shard map has no nodes to route to",
            ));
        }
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            router: cfg.router,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            active: AtomicU64::new(0),
            writes_routed: AtomicU64::new(0),
            reads_routed: AtomicU64::new(0),
            map_gets: AtomicU64::new(0),
            conn_errors: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let conns_limit = cfg.conns_limit;
        let accept_thread =
            std::thread::spawn(move || accept_loop(&accept_shared, &listener, conns_limit));
        Ok(RouterHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

impl RouterHandle {
    /// The bound address (the real port when spawned with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections and returns the
    /// final report.
    pub fn shutdown(mut self) -> RouterReport {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.join()
    }

    /// Waits for the conns-limit drain (or a shutdown from another
    /// handle path) and returns the final report.
    pub fn wait(mut self) -> RouterReport {
        self.join()
    }

    fn join(&mut self) -> RouterReport {
        if let Some(t) = self.accept_thread.take() {
            let conn_threads = t.join().expect("router accept thread panicked");
            for c in conn_threads {
                let _ = c.join();
            }
        }
        let m = &self.shared;
        RouterReport {
            connections: m.connections.load(Ordering::Relaxed),
            writes_routed: m.writes_routed.load(Ordering::Relaxed),
            reads_routed: m.reads_routed.load(Ordering::Relaxed),
            map_gets: m.map_gets.load(Ordering::Relaxed),
            conn_errors: m.conn_errors.load(Ordering::Relaxed),
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.join();
    }
}

/// Accepts connections until shutdown (or until `conns_limit`
/// connections were accepted *and* all of them finished). Mirrors the
/// storage server's accept loop.
fn accept_loop(
    shared: &Arc<RouterShared>,
    listener: &TcpListener,
    conns_limit: Option<u64>,
) -> Vec<JoinHandle<()>> {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        if let Some(limit) = conns_limit {
            if shared.connections.load(Ordering::Relaxed) >= limit {
                if shared.active.load(Ordering::Relaxed) == 0 {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                conn_threads.push(std::thread::spawn(move || {
                    if serve_route_conn(&conn_shared, stream).is_err() {
                        conn_shared.conn_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    conn_shared.active.fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    conn_threads
}

/// Serves one fronted connection: decode a frame, route it, relay the
/// reply. Returns `Err` on anything that forced a non-clean close.
fn serve_route_conn(shared: &Arc<RouterShared>, mut stream: TcpStream) -> Result<(), ClientError> {
    stream.set_nodelay(true)?;
    // One backend fan-out per fronted connection: replies come back on
    // the connection that asked, in issue order.
    let mut backend = ClusterClient::connect(shared.router.clone())?;
    let mut codec = FramedCodec::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let msg = loop {
            match codec.next_frame() {
                Ok(Some(msg)) => break msg,
                Ok(None) => {}
                Err(e) => return Err(e.into()),
            }
            let n = stream.read(&mut buf)?;
            if n == 0 {
                // Clean close only at a frame boundary.
                return if codec.pending_bytes() == 0 {
                    Ok(())
                } else {
                    Err(ClientError::Disconnected)
                };
            }
            codec.feed(&buf[..n]);
        };
        let reply = match msg {
            Message::Write { lba, data } => {
                backend.write(lba, data)?;
                shared.writes_routed.fetch_add(1, Ordering::Relaxed);
                Message::WriteAck { lba }
            }
            Message::Read { lba } => {
                let data = backend.read(lba)?;
                shared.reads_routed.fetch_add(1, Ordering::Relaxed);
                Message::ReadReply {
                    lba,
                    data: bytes::Bytes::from(data),
                }
            }
            Message::ShardMapRequest {
                action: ShardMapAction::Get,
                ..
            } => {
                shared.map_gets.fetch_add(1, Ordering::Relaxed);
                Message::ShardMapReply {
                    generation: shared.router.generation(),
                    map: bytes::Bytes::from(shared.router.encode()),
                }
            }
            // Set/Drain reshape the cluster; the front tier refuses them
            // (reshard is the orchestrator's job) by closing, exactly as
            // a storage node refuses a stale install.
            other => return Err(ClientError::UnexpectedReply(other)),
        };
        stream.write_all(&reply.encode()?)?;
    }
}

/// Installs `map` on every one of its member nodes
/// ([`ShardMapAction::Set`]), in id order. Each node rehomes any block
/// the new map assigns elsewhere *before* acking, so when this returns
/// every acked write lives on its new owner.
///
/// # Errors
///
/// The first connect or install failure; a node refusing the install
/// (stale generation) surfaces as [`ClientError::Disconnected`].
pub fn push_map(map: &ShardRouter) -> Result<(), ClientError> {
    let doc = map.encode();
    for node in map.nodes() {
        let addr: SocketAddr = node
            .addr
            .parse()
            .map_err(|_| ClientError::NoRoute(format!("bad node addr {}", node.addr)))?;
        let mut conn = StorageClient::connect(addr)?;
        conn.shard_map(ShardMapAction::Set, &doc)?;
    }
    Ok(())
}

/// Orchestrates a join: adds `node` to `current` (bumping the
/// generation) and pushes the new map to **every** member, newcomer
/// included. The old members rehome the keys the newcomer now owns as
/// part of acking the install.
///
/// # Errors
///
/// [`ClientError::NoRoute`] on a duplicate id; otherwise the first
/// push failure.
pub fn join_node(current: &ShardRouter, node: ShardNode) -> Result<ShardRouter, ClientError> {
    let mut next = current.clone();
    next.join(node)
        .map_err(|e| ClientError::NoRoute(e.to_string()))?;
    push_map(&next)?;
    Ok(next)
}

/// Orchestrates a departure with zero acked-write loss: computes the
/// survivors' map, sends [`ShardMapAction::Drain`] to the departing
/// node — which rehomes **all** its blocks to their new owners, acks,
/// and then exits through the storage server's graceful-drain path —
/// and finally pushes the new map to the survivors. Traffic must be
/// quiesced (or already pointed at a front tier holding the new map)
/// while this runs.
///
/// # Errors
///
/// [`ClientError::NoRoute`] on an unknown id; otherwise the first
/// connect or install failure.
pub fn drain_node(current: &ShardRouter, id: u64) -> Result<ShardRouter, ClientError> {
    let mut next = current.clone();
    let gone = next
        .drain(id)
        .map_err(|e| ClientError::NoRoute(e.to_string()))?;
    let addr: SocketAddr = gone
        .addr
        .parse()
        .map_err(|_| ClientError::NoRoute(format!("bad node addr {}", gone.addr)))?;
    let mut departing = StorageClient::connect(addr)?;
    departing.shard_map(ShardMapAction::Drain, &next.encode())?;
    push_map(&next)?;
    Ok(next)
}

/// Builds the deterministic bootstrap map over `addrs`: node ids are
/// 1-based positions in the list, so the same `--nodes` list always
/// derives the same map — which is what lets `fidr route`,
/// `fidr client --nodes` and `fidr reshard` agree on a topology with
/// no coordination service.
///
/// # Errors
///
/// [`ClientError::NoRoute`] on an empty list.
pub fn map_from_addrs(addrs: &[String]) -> Result<ShardRouter, ClientError> {
    if addrs.is_empty() {
        return Err(ClientError::NoRoute("--nodes list is empty".into()));
    }
    let nodes = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| ShardNode {
            id: i as u64 + 1,
            addr: addr.clone(),
        })
        .collect();
    ShardRouter::from_nodes(nodes).map_err(|e| ClientError::NoRoute(e.to_string()))
}
