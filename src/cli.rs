//! Argument-parsing helpers for the `fidr` CLI binary.
//!
//! Kept in the library so the parsing rules are unit-testable; the binary
//! in `src/bin/fidr.rs` is a thin dispatcher over these.

use crate::SystemVariant;
use fidr_workload::WorkloadSpec;
use std::collections::HashMap;

/// Splits raw arguments into positional values and `--flag value` pairs.
/// A flag without a following value — trailing, or directly followed by
/// another `--flag` — maps to an empty string, so boolean flags like
/// `--tiered` never swallow the flag after them.
pub fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

/// The flags each subcommand accepts (`None` = not a subcommand). The
/// single source of truth for [`reject_unknown_flags`] and the negative-
/// path CLI tests: a flag missing here is a usage error, not silently
/// ignored.
pub fn allowed_flags(cmd: &str) -> Option<&'static [&'static str]> {
    Some(match cmd {
        "run" => &[
            "workload",
            "variant",
            "ops",
            "faults",
            "workers",
            "cache-shards",
            "tiered",
            "metrics-out",
            "spans-out",
        ],
        "compare" => &["workload", "ops"],
        "stats" => &[
            "workload",
            "variant",
            "ops",
            "faults",
            "workers",
            "cache-shards",
            "tiered",
            "metrics-out",
            "out",
            "spans-out",
        ],
        "spans" => &[
            "workload",
            "variant",
            "ops",
            "faults",
            "workers",
            "cache-shards",
            "tiered",
            "spans-out",
        ],
        "latency" => &[],
        "cost" => &["capacity-tb", "throughput"],
        "report" => &["ops", "out"],
        "trace" => &[
            "chunk-kb",
            "faults",
            "workers",
            "cache-shards",
            "metrics-out",
            "spans-out",
        ],
        "serve" => &[
            "port",
            "port-file",
            "conns-limit",
            "queue",
            "workers",
            "cache-shards",
            "tiered",
            "sample-ms",
            "metrics-out",
            "node-id",
            "gc-every",
            "gc-threshold",
        ],
        "client" => &[
            "addr",
            "conns",
            "ops",
            "seed",
            "nodes",
            "mode",
            "tenants",
            "zipf",
            "rate",
            "blocks",
            "rounds",
            "delete-pct",
        ],
        "gc" => &[
            "tenants",
            "blocks",
            "rounds",
            "delete-pct",
            "seed",
            "threshold",
            "workers",
            "metrics-out",
        ],
        "scrape" => &["addr", "prom", "out"],
        "top" => &["addr", "interval-ms", "iters"],
        "route" => &["nodes", "port", "port-file", "conns-limit"],
        "reshard" => &["nodes", "join", "drain"],
        _ => return None,
    })
}

/// Rejects flags `cmd` does not accept, naming the first offender
/// (alphabetically, for a deterministic message). Unknown subcommands
/// accept nothing.
pub fn reject_unknown_flags(cmd: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let allowed = allowed_flags(cmd).unwrap_or(&[]);
    let mut unknown: Vec<&str> = flags
        .keys()
        .map(String::as_str)
        .filter(|k| !allowed.contains(k))
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        Some(flag) => Err(format!("unknown flag --{flag} for `fidr {cmd}`")),
        None => Ok(()),
    }
}

/// Resolves an optional boolean flag (e.g. `--tiered`). Absent →
/// `false`; bare or an explicit true/false spelling → that value; any
/// other value is an error naming the flag.
pub fn bool_flag(flags: &HashMap<String, String>, name: &str) -> Result<bool, String> {
    match flags.get(name).map(String::as_str) {
        None => Ok(false),
        Some("" | "true" | "on" | "1") => Ok(true),
        Some("false" | "off" | "0") => Ok(false),
        Some(v) => Err(format!("--{name} is a boolean flag, got {v:?}")),
    }
}

/// Resolves a workload name used on the command line.
pub fn workload_by_name(name: &str, ops: usize) -> Option<WorkloadSpec> {
    Some(match name {
        "write-h" => WorkloadSpec::write_h(ops),
        "write-m" => WorkloadSpec::write_m(ops),
        "write-l" => WorkloadSpec::write_l(ops),
        "read-mixed" => WorkloadSpec::read_mixed(ops),
        "vdi" => WorkloadSpec::vdi(ops),
        "database" => WorkloadSpec::database(ops),
        "overwrite-churn" => WorkloadSpec::overwrite_churn(ops),
        _ => return None,
    })
}

/// Resolves an output-path flag shared across subcommands
/// (`--metrics-out`, `--spans-out`, legacy `--out`). `names` lists the
/// accepted spellings in precedence order; the first one present wins. A
/// flag given without a value is an error rather than a silent stdout
/// fallback.
pub fn output_flag(
    flags: &HashMap<String, String>,
    names: &[&str],
) -> Result<Option<String>, String> {
    for name in names {
        if let Some(value) = flags.get(*name) {
            if value.is_empty() {
                return Err(format!("--{name} needs a file path"));
            }
            return Ok(Some(value.clone()));
        }
    }
    Ok(None)
}

/// Resolves an optional positive-integer flag (e.g. `--workers 4`,
/// `--cache-shards 8`). Absent → `default`; present but empty,
/// non-numeric or zero → an error naming the flag.
pub fn usize_flag(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("--{name} needs a positive integer, got {value:?}")),
        },
    }
}

/// Resolves an optional non-negative integer flag where zero is
/// meaningful (e.g. `--sample-ms 0` disables the sampler). Absent →
/// `default`; present but empty or non-numeric → an error naming the
/// flag.
pub fn u64_flag(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(value) => value
            .parse::<u64>()
            .map_err(|_| format!("--{name} needs a non-negative integer, got {value:?}")),
    }
}

/// Resolves an optional port-sized flag where zero is meaningful
/// (`--port 0` binds an ephemeral port). Absent → `default`; present
/// but empty, non-numeric or over 65535 → an error naming the flag.
pub fn u16_flag(flags: &HashMap<String, String>, name: &str, default: u16) -> Result<u16, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(value) => value
            .parse::<u16>()
            .map_err(|_| format!("--{name} needs an integer in 0..=65535, got {value:?}")),
    }
}

/// Resolves a truly optional positive-integer flag (e.g.
/// `--conns-limit N`, `--drain ID`): absent → `None`; present but
/// empty, non-numeric or zero → an error naming the flag.
pub fn opt_positive_u64_flag(
    flags: &HashMap<String, String>,
    name: &str,
) -> Result<Option<u64>, String> {
    match flags.get(name) {
        None => Ok(None),
        Some(value) => match value.parse::<u64>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(format!("--{name} needs a positive integer, got {value:?}")),
        },
    }
}

/// Resolves an optional non-negative float flag (e.g. `--rate 50000`,
/// `--zipf 1.0`). Absent → `default`; present but empty, non-numeric
/// or negative → an error naming the flag.
pub fn f64_flag(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(value) => match value.parse::<f64>() {
            Ok(x) if x >= 0.0 && x.is_finite() => Ok(x),
            _ => Err(format!(
                "--{name} needs a non-negative number, got {value:?}"
            )),
        },
    }
}

/// Resolves a comma-separated list flag (e.g.
/// `--nodes 127.0.0.1:7001,127.0.0.1:7002`) — one flag occurrence, many
/// values, because [`parse_flags`] keeps only the last occurrence of a
/// repeated flag. Absent → empty; present but empty, or with an empty
/// element → an error naming the flag.
pub fn list_flag(flags: &HashMap<String, String>, name: &str) -> Result<Vec<String>, String> {
    match flags.get(name) {
        None => Ok(Vec::new()),
        Some(value) => {
            let items: Vec<String> = value.split(',').map(|s| s.trim().to_string()).collect();
            if items.iter().any(String::is_empty) {
                return Err(format!(
                    "--{name} needs a comma-separated list with no empty entries, got {value:?}"
                ));
            }
            Ok(items)
        }
    }
}

/// Writes `contents` to `path` with a uniform error message.
pub fn write_output(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("write {path}: {e}"))
}

/// Resolves a system-variant name used on the command line.
pub fn variant_by_name(name: &str) -> Option<SystemVariant> {
    Some(match name {
        "baseline" => SystemVariant::Baseline,
        "nic-p2p" => SystemVariant::FidrNicP2p,
        "hw-single" => SystemVariant::FidrHwCacheSingleUpdate,
        "full" => SystemVariant::FidrFull,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_separate() {
        let (pos, flags) = parse_flags(&args(&[
            "trace.txt",
            "--ops",
            "500",
            "--workload",
            "write-h",
        ]));
        assert_eq!(pos, vec!["trace.txt"]);
        assert_eq!(flags["ops"], "500");
        assert_eq!(flags["workload"], "write-h");
    }

    #[test]
    fn trailing_flag_gets_empty_value() {
        let (_, flags) = parse_flags(&args(&["--verbose"]));
        assert_eq!(flags["verbose"], "");
    }

    #[test]
    fn boolean_flag_does_not_swallow_the_next_flag() {
        let (_, flags) = parse_flags(&args(&["--tiered", "--workers", "4"]));
        assert_eq!(flags["tiered"], "");
        assert_eq!(flags["workers"], "4");
    }

    #[test]
    fn bool_flag_accepts_bare_and_spelled_forms() {
        for (argv, want) in [
            (&["--tiered"][..], true),
            (&["--tiered", "true"], true),
            (&["--tiered", "on"], true),
            (&["--tiered", "false"], false),
            (&[][..], false),
        ] {
            let (_, flags) = parse_flags(&args(argv));
            assert_eq!(bool_flag(&flags, "tiered").unwrap(), want, "{argv:?}");
        }
        let (_, flags) = parse_flags(&args(&["--tiered", "maybe"]));
        let err = bool_flag(&flags, "tiered").unwrap_err();
        assert!(err.contains("--tiered"), "{err}");
    }

    #[test]
    fn every_subcommand_rejects_an_unknown_flag_by_name() {
        // One negative path per subcommand: a flag another subcommand
        // accepts (or pure junk) must produce a usage error that names
        // the offending flag — never a silent ignore, never a panic.
        for (cmd, bad) in [
            ("run", "capacity-tb"),
            ("compare", "workers"),
            ("stats", "port"),
            ("spans", "metrics-out"),
            ("latency", "ops"),
            ("cost", "workload"),
            ("report", "variant"),
            ("trace", "conns-limit"),
            ("serve", "addr"),
            ("client", "tiered"),
            ("gc", "addr"),
            ("scrape", "sample-ms"),
            ("top", "prom"),
            ("route", "workers"),
            ("reshard", "addr"),
        ] {
            let (_, flags) = parse_flags(&args(&[&format!("--{bad}"), "1"]));
            let err = reject_unknown_flags(cmd, &flags).unwrap_err();
            assert!(err.contains(&format!("--{bad}")), "{cmd}: {err}");
            assert!(err.contains(cmd), "{cmd}: {err}");
        }
    }

    #[test]
    fn allowed_flags_pass_validation() {
        let (_, flags) = parse_flags(&args(&[
            "--workload",
            "write-l",
            "--variant",
            "full",
            "--tiered",
            "--workers",
            "4",
        ]));
        assert!(reject_unknown_flags("run", &flags).is_ok());
        assert!(allowed_flags("latency").unwrap().is_empty());
        assert!(allowed_flags("bogus").is_none());
    }

    #[test]
    fn output_flag_precedence_and_errors() {
        let (_, flags) = parse_flags(&args(&["--metrics-out", "m.json", "--out", "o.json"]));
        assert_eq!(
            output_flag(&flags, &["metrics-out", "out"]).unwrap(),
            Some("m.json".to_string())
        );
        assert_eq!(
            output_flag(&flags, &["out"]).unwrap(),
            Some("o.json".to_string())
        );
        assert_eq!(output_flag(&flags, &["spans-out"]).unwrap(), None);
        let (_, flags) = parse_flags(&args(&["--spans-out"]));
        assert!(output_flag(&flags, &["spans-out"]).is_err());
    }

    #[test]
    fn usize_flag_parses_defaults_and_rejects_junk() {
        let (_, flags) = parse_flags(&args(&["--workers", "4"]));
        assert_eq!(usize_flag(&flags, "workers", 1).unwrap(), 4);
        assert_eq!(usize_flag(&flags, "cache-shards", 1).unwrap(), 1);
        for bad in [&["--workers"][..], &["--workers", "0"], &["--workers", "x"]] {
            let (_, flags) = parse_flags(&args(bad));
            assert!(usize_flag(&flags, "workers", 1).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn u64_flag_allows_zero_but_rejects_junk() {
        let (_, flags) = parse_flags(&args(&["--sample-ms", "0"]));
        assert_eq!(u64_flag(&flags, "sample-ms", 1000).unwrap(), 0);
        assert_eq!(u64_flag(&flags, "interval-ms", 500).unwrap(), 500);
        for bad in [
            &["--sample-ms"][..],
            &["--sample-ms", "-3"],
            &["--sample-ms", "x"],
        ] {
            let (_, flags) = parse_flags(&args(bad));
            assert!(u64_flag(&flags, "sample-ms", 1000).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn u16_flag_bounds_the_port_range() {
        let (_, flags) = parse_flags(&args(&["--port", "0"]));
        assert_eq!(u16_flag(&flags, "port", 7000).unwrap(), 0);
        assert_eq!(u16_flag(&flags, "other", 7000).unwrap(), 7000);
        for bad in [&["--port", "65536"][..], &["--port", "x"], &["--port"]] {
            let (_, flags) = parse_flags(&args(bad));
            assert!(u16_flag(&flags, "port", 0).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn opt_positive_u64_flag_distinguishes_absent_from_junk() {
        let (_, flags) = parse_flags(&args(&["--conns-limit", "4"]));
        assert_eq!(
            opt_positive_u64_flag(&flags, "conns-limit").unwrap(),
            Some(4)
        );
        assert_eq!(opt_positive_u64_flag(&flags, "drain").unwrap(), None);
        for bad in [
            &["--conns-limit", "0"][..],
            &["--conns-limit", "x"],
            &["--conns-limit"],
        ] {
            let (_, flags) = parse_flags(&args(bad));
            let err = opt_positive_u64_flag(&flags, "conns-limit").unwrap_err();
            assert!(err.contains("--conns-limit"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn f64_flag_rejects_negatives_and_junk() {
        let (_, flags) = parse_flags(&args(&["--rate", "50000.5"]));
        assert_eq!(f64_flag(&flags, "rate", 0.0).unwrap(), 50000.5);
        assert_eq!(f64_flag(&flags, "zipf", 1.0).unwrap(), 1.0);
        for bad in [
            &["--rate", "-1"][..],
            &["--rate", "x"],
            &["--rate", "inf"],
            &["--rate"],
        ] {
            let (_, flags) = parse_flags(&args(bad));
            assert!(f64_flag(&flags, "rate", 0.0).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn list_flag_splits_on_commas_and_rejects_empties() {
        let (_, flags) = parse_flags(&args(&["--nodes", "127.0.0.1:1,127.0.0.1:2"]));
        assert_eq!(
            list_flag(&flags, "nodes").unwrap(),
            vec!["127.0.0.1:1", "127.0.0.1:2"]
        );
        assert!(list_flag(&flags, "absent").unwrap().is_empty());
        for bad in [&["--nodes", "a,,b"][..], &["--nodes", "a,"], &["--nodes"]] {
            let (_, flags) = parse_flags(&args(bad));
            assert!(list_flag(&flags, "nodes").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn all_documented_workloads_resolve() {
        for name in [
            "write-h",
            "write-m",
            "write-l",
            "read-mixed",
            "vdi",
            "database",
            "overwrite-churn",
        ] {
            assert!(workload_by_name(name, 10).is_some(), "{name}");
        }
        assert!(workload_by_name("bogus", 10).is_none());
    }

    #[test]
    fn all_documented_variants_resolve() {
        for name in ["baseline", "nic-p2p", "hw-single", "full"] {
            assert!(variant_by_name(name).is_some(), "{name}");
        }
        assert!(variant_by_name("bogus").is_none());
    }
}
