//! Quickstart: stand up a FIDR server, write data, read it back, and look
//! at what the data reduction and the hardware ledger say.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};
use fidr::hwsim::{PlatformSpec, Projection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A FIDR server with the full feature set: NIC hash offload, P2P
    // datapath, Cache HW-Engine with 4 concurrent update slots.
    let mut server = FidrSystem::new(FidrConfig::default());

    // Write 1,000 chunks of half-compressible data; every third chunk
    // repeats earlier content, so deduplication has something to find.
    let gen = ContentGenerator::new(0.5);
    for i in 0..1000u64 {
        let content_id = if i % 3 == 0 { i / 9 } else { i };
        let data = Bytes::from(gen.chunk(content_id, 4096));
        server.write(Lba(i), data)?;
    }
    server.flush()?;

    // Read-your-writes, straight through the decompression path.
    let expect = gen.chunk(0, 4096);
    assert_eq!(server.read(Lba(0))?, expect);
    println!("read-back verified for LBA 0");

    // What did reduction achieve?
    let stats = server.stats();
    println!(
        "wrote {} chunks ({} KB raw) -> {} unique, {} duplicates, {} KB stored ({:.1}x reduction)",
        stats.write_chunks,
        stats.raw_bytes / 1024,
        stats.unique_chunks,
        stats.duplicate_chunks,
        stats.stored_bytes / 1024,
        stats.reduction_factor(),
    );

    // What did it cost the host? (The FIDR selling point: almost nothing.)
    let ledger = server.ledger();
    println!(
        "host memory traffic: {:.2} bytes per client byte; CPU: {:.2} cycles per byte",
        ledger.mem_bytes_per_client_byte(),
        ledger.cpu_cycles_per_client_byte(),
    );

    // Project this run onto a 22-core, 170-GB/s socket (§7.5).
    let platform = PlatformSpec::default();
    let projection = Projection::project(ledger, &platform, &[]);
    println!(
        "projected per-socket throughput: {:.1} GB/s (bottleneck: {})",
        projection.achievable / 1e9,
        projection.bottleneck(),
    );
    Ok(())
}
