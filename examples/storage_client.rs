//! Storage-client session: drives a FIDR server through the simplified
//! wire protocol of §6.2 (read / write / acknowledgment frames), the way a
//! remote client would — including a read served straight from the in-NIC
//! write buffer and the §7.6 latency budget of both datapaths.
//!
//! ```sh
//! cargo run --release --example storage_client
//! ```

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrError, FidrSystem, LatencyModel};
use fidr::nic::protocol::Message;
use fidr::ssd::SsdSpec;

/// The server side: decode a frame, apply it, encode the reply.
fn serve(server: &mut FidrSystem, frame: &[u8]) -> Result<Vec<u8>, FidrError> {
    let (msg, _used) = Message::decode_whole(frame).expect("well-formed frame");
    let reply = match msg {
        Message::Write { lba, data } => {
            server.write(lba, data)?;
            Message::WriteAck { lba }
        }
        Message::Read { lba } => Message::ReadReply {
            lba,
            data: Bytes::from(server.read(lba)?),
        },
        other => panic!("client sent a server-only message: {other:?}"),
    };
    Ok(reply.encode().expect("reply within the payload bound"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = FidrSystem::new(FidrConfig::default());
    let gen = ContentGenerator::new(0.5);

    // The client writes 200 chunks over the wire and waits for each ack
    // (write-wait-acknowledgment, §6.2).
    for i in 0..200u64 {
        let frame = Message::Write {
            lba: Lba(i),
            data: Bytes::from(gen.chunk(i % 40, 4096)),
        }
        .encode()?;
        let reply = serve(&mut server, &frame)?;
        let (ack, _) = Message::decode_whole(&reply)?;
        assert_eq!(ack, Message::WriteAck { lba: Lba(i) });
    }
    println!("200 writes acknowledged over the wire protocol");

    // An immediate read-back of a hot LBA is served from the in-NIC
    // buffer without touching the backend (§5.3 read step 2).
    let frame = Message::Read { lba: Lba(199) }.encode()?;
    let reply = serve(&mut server, &frame)?;
    let (msg, _) = Message::decode_whole(&reply)?;
    match msg {
        Message::ReadReply { lba, data } => {
            assert_eq!(lba, Lba(199));
            assert_eq!(&data[..], gen.chunk(199 % 40, 4096));
            println!(
                "hot read served; NIC buffer hits so far: {}",
                server.nic_stats().read_buffer_hits
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Cold reads go through SSD -> decompression engine -> NIC; show the
    // latency budget each architecture pays for that path.
    server.flush()?;
    let ssd = SsdSpec::default();
    println!("\nserver-side 4-KB read latency budget:");
    for (name, model) in [
        ("baseline", LatencyModel::baseline_read(&ssd)),
        ("FIDR", LatencyModel::fidr_read(&ssd)),
    ] {
        println!(
            "  {:<9} {:>4.0} us total across {} stages",
            name,
            model.total().as_secs_f64() * 1e6,
            model.stages.len()
        );
    }
    println!(
        "  write commit: {:.0} us (acked at the battery-backed NIC buffer)",
        LatencyModel::write_commit().total().as_secs_f64() * 1e6
    );
    Ok(())
}
