//! Capacity planning: should your PB-scale SSD array run inline data
//! reduction, and with which architecture? Reproduces the §7.8 analysis
//! as a planning tool.
//!
//! ```sh
//! cargo run --release --example capacity_planning [capacity_tb] [throughput_gbps]
//! ```

use fidr::cost::{CostBreakdown, CostModel, Scenario};

fn print_row(name: &str, c: &CostBreakdown, effective_gb: f64) {
    println!(
        "{:<24} {:>10.0} {:>10.0} {:>8.0} {:>8.0} {:>9.0} {:>11.0} {:>9.3}",
        name,
        c.data_ssd,
        c.table_ssd,
        c.dram,
        c.cpu,
        c.fpga,
        c.total(),
        c.total() / effective_gb,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let capacity_tb: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500.0);
    let throughput: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(75.0);
    let effective_gb = capacity_tb * 1000.0;

    println!(
        "deployment point: {capacity_tb:.0} TB effective capacity at {throughput:.0} GB/s per socket\n"
    );

    let model = CostModel::default();
    let fidr = model.fidr(Scenario {
        effective_gb,
        throughput_gbps: throughput,
        reduction_factor: 4.0, // 50% dedup x 50% compression
        reduced_fraction: 1.0,
        cores: 0.29 * throughput, // measured FIDR cores/GBps
        cache_dram_gb: 100.0,
    });
    // The baseline reduces only what its ~25 GB/s-per-socket control plane
    // keeps up with.
    let reduced_fraction = (25.0 / throughput).min(1.0);
    let baseline = model.baseline(Scenario {
        effective_gb,
        throughput_gbps: throughput,
        reduction_factor: 4.0,
        reduced_fraction,
        cores: (0.9 * throughput * reduced_fraction).min(22.0),
        cache_dram_gb: 100.0,
    });
    let none = model.no_reduction(effective_gb);

    println!(
        "{:<24} {:>10} {:>10} {:>8} {:>8} {:>9} {:>11} {:>9}",
        "architecture", "data SSD", "table SSD", "DRAM", "CPU", "FPGA", "total $", "$/GB"
    );
    print_row("no data reduction", &none, effective_gb);
    print_row(
        &format!("baseline ({:.0}% reduced)", reduced_fraction * 100.0),
        &baseline,
        effective_gb,
    );
    print_row("FIDR (fully reduced)", &fidr, effective_gb);

    println!(
        "\nFIDR saving vs no reduction: {:.1}%",
        model.saving(&fidr, effective_gb) * 100.0
    );
    println!(
        "FIDR saving vs baseline:     {:.1}%",
        (1.0 - fidr.total() / baseline.total()) * 100.0
    );
    if throughput > 25.0 {
        println!("\nnote: above ~25 GB/s the baseline's host-side control plane cannot");
        println!("keep up, forcing partial reduction — the cost gap the paper's");
        println!("Figure 15 highlights.");
    }
}
