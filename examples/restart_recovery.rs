//! Restart recovery: checkpoint a loaded server to a file, "crash", and
//! bring a new server up from the image — then prove it is the same
//! volume (same reads, same dedup behaviour, same pending GC work).
//!
//! ```sh
//! cargo run --release --example restart_recovery
//! ```

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem, Snapshot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = ContentGenerator::new(0.5);
    let path = std::env::temp_dir().join("fidr-demo.snapshot");

    // A server takes 2,000 writes (with duplicates), then some overwrites
    // that leave dead chunks pending collection.
    let mut server = FidrSystem::new(FidrConfig::default());
    for i in 0..2_000u64 {
        // LBAs 0..100 get unique content (so the later overwrites orphan
        // it); the rest share 400 contents to exercise deduplication.
        let content = if i < 100 { 100_000 + i } else { i % 400 };
        server.write(Lba(i), Bytes::from(gen.chunk(content, 4096)))?;
    }
    for i in 0..100u64 {
        server.write(Lba(i), Bytes::from(gen.chunk(9_000 + i, 4096)))?;
    }
    let snapshot = server.checkpoint()?;
    let image = snapshot.encode();
    std::fs::write(&path, &image)?;
    println!(
        "checkpointed: {} unique chunks, {} pending dead, {} KB image -> {}",
        server.stats().unique_chunks,
        server.pending_dead_chunks(),
        image.len() / 1024,
        path.display()
    );
    drop(server); // the "crash"

    // Recovery: decode the image and restore.
    let image = std::fs::read(&path)?;
    let snapshot = Snapshot::decode(&image)?;
    let mut restored = FidrSystem::restore(FidrConfig::default(), snapshot);

    // Same volume: reads, integrity, dedup against old content, GC state.
    assert_eq!(restored.read(Lba(150))?, gen.chunk(150, 4096));
    assert_eq!(restored.read(Lba(42))?, gen.chunk(9_042, 4096));
    let verified = restored.verify_integrity()?;
    restored.write(Lba(5_000), Bytes::from(gen.chunk(250, 4096)))?;
    restored.flush()?;
    let report = restored.collect_garbage(0.5)?;
    println!(
        "restored: {verified} chunks verified; re-write of old content deduped ({} dup); \
         GC reclaimed {} chunks, freed {} KB",
        restored.stats().duplicate_chunks,
        report.reclaimed_pbns,
        report.freed_bytes / 1024
    );
    assert_eq!(restored.stats().duplicate_chunks, 1);
    assert_eq!(report.reclaimed_pbns, 100);

    std::fs::remove_file(&path).ok();
    println!("recovery demo complete.");
    Ok(())
}
