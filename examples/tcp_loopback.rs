//! Loopback TCP serving demo: the two-machine deployment of §6.2 on one
//! host. Spawns the concurrent storage front-end, drives it with four
//! parallel client connections of interleaved write/read/verify traffic
//! over real sockets, then drains the server and prints the `server.*`
//! slice of its final `fidr.metrics.v1` snapshot.
//!
//! ```sh
//! cargo run --release --example tcp_loopback
//! ```

use fidr::client::run_traffic;
use fidr::server::{Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Port 0 picks an ephemeral port; four connections then auto-drain.
    let handle = Server::spawn(ServerConfig {
        conns_limit: Some(4),
        ..ServerConfig::default()
    })?;
    let addr = handle.local_addr();
    println!("serving on {addr}");

    let report = run_traffic(addr, 4, 150, 42)?;
    println!(
        "client traffic: {} writes acked, {} reads verified, {} mismatches",
        report.writes, report.reads, report.verify_failures
    );
    assert_eq!(report.verify_failures, 0);

    // All four connections closed, so the server drains on its own:
    // remaining NIC batches process, the open container seals, dirty
    // cache lines flush.
    let metrics = handle.wait()?;
    println!("\nfinal server.* counters:");
    for (name, _) in metrics.iter() {
        if let Some(v) = metrics.counter(name) {
            if name.starts_with("server.") {
                println!("  {name:<42} {v}");
            }
        }
    }
    let dedup = metrics
        .counter("reduction.duplicate_chunks.count")
        .unwrap_or_default();
    println!("\ncross-connection duplicate chunks eliminated: {dedup}");
    assert_eq!(metrics.counter("server.frames.rejected.count"), Some(0));
    Ok(())
}
