//! Multi-tenant table-cache contention (paper §8): a latency-sensitive
//! database tenant shares the Hash-PBN cache with a scan-heavy backup
//! tenant. Plain LRU lets the scan wash the database's working set out;
//! the prioritized LRU keeps per-class shares.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use fidr::cache::{Priority, PriorityLruCache};
use fidr::hash::Fingerprint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CACHE_LINES: usize = 512;
const OPS: usize = 60_000;

/// The database tenant re-touches a small hot set of buckets; the backup
/// tenant streams over an enormous one.
fn bucket_for(tenant: u32, key: u64) -> u64 {
    Fingerprint::of(&(u64::from(tenant) << 32 | key).to_le_bytes()).bucket_index(1 << 20)
}

fn run(guarantee: usize, db_priority: Priority, scan_priority: Priority) -> (f64, f64) {
    let mut cache = PriorityLruCache::new(CACHE_LINES, guarantee);
    let mut rng = StdRng::seed_from_u64(7);
    let mut scan_cursor = 0u64;
    for _ in 0..OPS {
        if rng.gen_bool(0.5) {
            // Database: zipf-ish reuse over 256 hot buckets.
            let key = rng.gen_range(0..256u64);
            cache.access(bucket_for(0, key), 0, db_priority);
        } else {
            // Backup: sequential scan, never reuses.
            scan_cursor += 1;
            cache.access(bucket_for(1, scan_cursor), 1, scan_priority);
        }
    }
    (
        cache.tenant_stats(0).hit_rate(),
        cache.tenant_stats(1).hit_rate(),
    )
}

fn main() {
    println!(
        "table cache: {CACHE_LINES} lines; database working set 256 buckets; backup = pure scan\n"
    );
    // Plain LRU = both tenants in one priority class, no guarantees.
    let (db_plain, scan_plain) = run(0, Priority(1), Priority(1));
    // Prioritized LRU: database above the scanner, small guaranteed share.
    let (db_prio, scan_prio) = run(32, Priority(3), Priority(0));

    println!(
        "{:<26} {:>16} {:>16}",
        "policy", "database hits", "backup hits"
    );
    println!(
        "{:<26} {:>15.1}% {:>15.1}%",
        "plain LRU (one class)",
        db_plain * 100.0,
        scan_plain * 100.0
    );
    println!(
        "{:<26} {:>15.1}% {:>15.1}%",
        "prioritized LRU (sec. 8)",
        db_prio * 100.0,
        scan_prio * 100.0
    );
    println!(
        "\nthe scan gains nothing from caching either way (it never reuses),\n\
         but under plain LRU it steals {:.0}% of the database's hits.",
        (db_prio - db_plain) / db_prio.max(1e-9) * 100.0
    );
    assert!(
        db_prio > db_plain + 0.2,
        "prioritized LRU should clearly protect the database tenant"
    );
}
