//! Mail-server scenario: the paper's motivating workload class — high
//! content duplication (one message delivered to many mailboxes), scattered
//! 4-KB writes — run through both architectures side by side.
//!
//! ```sh
//! cargo run --release --example mail_server
//! ```

use fidr::hwsim::{CpuTask, MemPath, PlatformSpec};
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};

fn main() {
    let ops = 20_000;
    let spec = WorkloadSpec::write_h(ops); // mail-trace-derived Write-H mix
    let platform = PlatformSpec::default();

    println!("mail-server workload: {ops} x 4-KB writes, 88% duplicate content\n");

    let baseline = run_workload(SystemVariant::Baseline, spec.clone(), RunConfig::default());
    let fidr = run_workload(SystemVariant::FidrFull, spec, RunConfig::default());

    println!("{:<34} {:>16} {:>16}", "", "baseline (CIDR)", "FIDR");
    println!(
        "{:<34} {:>16.2} {:>16.2}",
        "host DRAM bytes / client byte",
        baseline.ledger.mem_bytes_per_client_byte(),
        fidr.ledger.mem_bytes_per_client_byte()
    );
    println!(
        "{:<34} {:>16.2} {:>16.2}",
        "CPU cycles / client byte",
        baseline.ledger.cpu_cycles_per_client_byte(),
        fidr.ledger.cpu_cycles_per_client_byte()
    );
    println!(
        "{:<34} {:>11.1} GB/s {:>11.1} GB/s",
        "projected socket throughput",
        baseline.achievable_gbps(&platform),
        fidr.achievable_gbps(&platform)
    );
    println!(
        "{:<34} {:>15.1}% {:>15.1}%",
        "table-cache hit rate",
        baseline.cache.hit_rate() * 100.0,
        fidr.cache.hit_rate() * 100.0
    );
    println!(
        "{:<34} {:>15.1}x {:>15.1}x",
        "data reduction factor",
        baseline.reduction.reduction_factor(),
        fidr.reduction.reduction_factor()
    );

    println!("\nwhere the baseline's host memory bandwidth goes:");
    for path in MemPath::ALL {
        println!(
            "  {:<36} {:>5.1}%",
            path.label(),
            baseline.ledger.mem_fraction(path) * 100.0
        );
    }

    println!("\nwhat FIDR removed from the CPU:");
    for task in [
        CpuTask::UniquePrediction,
        CpuTask::BatchScheduling,
        CpuTask::TreeIndexing,
        CpuTask::TableSsdStack,
    ] {
        println!(
            "  {:<36} {:>12} -> {:>8} cycles",
            task.label(),
            baseline.ledger.cpu_cycles(task),
            fidr.ledger.cpu_cycles(task)
        );
    }

    if let Some(h) = fidr.hwtree {
        println!(
            "\nCache HW-Engine: {} searches, {} updates, crash rate {:.4}%",
            h.searches,
            h.updates,
            h.crash_rate() * 100.0
        );
    }
    println!(
        "\nspeedup: {:.2}x  (paper: up to 3.3x on write-heavy workloads)",
        fidr.achievable_gbps(&platform) / baseline.achievable_gbps(&platform)
    );
}
