#!/usr/bin/env sh
# Full local gate: formatting, lints, docs and tests.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

# Release-profile pass: guards that must not compile away (e.g. the
# container-id reuse check, once a debug_assert!) stay enforced.
echo "==> cargo test --release"
cargo test --workspace --release -q

# Span-export smoke test: a small traced workload must produce a
# Perfetto-loadable fidr.spans.v1 file (the exporter validates the JSON
# shape before writing; the greps double-check the file on disk). CI
# uploads the file as an inspectable artifact.
echo "==> fidr spans export"
SPANS_OUT="${SPANS_OUT:-target/ci-spans.json}"
cargo run --release -q --bin fidr -- spans \
  --workload write-h --ops 500 --spans-out "$SPANS_OUT" > /dev/null
grep -q '"schema":"fidr.spans.v1"' "$SPANS_OUT"
grep -q '"traceEvents":\[' "$SPANS_OUT"
grep -q '"name":"write"' "$SPANS_OUT"
echo "    $SPANS_OUT: $(grep -c '"ph":"X"' "$SPANS_OUT") span events"

echo "All checks passed."
