#!/usr/bin/env sh
# Full local gate: formatting, lints, docs and tests.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

# Release-profile pass: guards that must not compile away (e.g. the
# container-id reuse check, once a debug_assert!) stay enforced.
echo "==> cargo test --release"
cargo test --workspace --release -q

echo "All checks passed."
