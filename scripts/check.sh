#!/usr/bin/env sh
# Full local gate: formatting, lints, docs and tests.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

# Release-profile pass: guards that must not compile away (e.g. the
# container-id reuse check, once a debug_assert!) stay enforced.
echo "==> cargo test --release"
cargo test --workspace --release -q

# Span-export smoke test: a small traced workload must produce a
# Perfetto-loadable fidr.spans.v1 file (the exporter validates the JSON
# shape before writing; the greps double-check the file on disk). CI
# uploads the file as an inspectable artifact.
echo "==> fidr spans export"
SPANS_OUT="${SPANS_OUT:-target/ci-spans.json}"
cargo run --release -q --bin fidr -- spans \
  --workload write-h --ops 500 --spans-out "$SPANS_OUT" > /dev/null
grep -q '"schema":"fidr.spans.v1"' "$SPANS_OUT"
grep -q '"traceEvents":\[' "$SPANS_OUT"
grep -q '"name":"write"' "$SPANS_OUT"
echo "    $SPANS_OUT: $(grep -c '"ph":"X"' "$SPANS_OUT") span events"

# Parallel-pipeline determinism gate: the same seeded workload must export
# byte-identical fidr.metrics.v1 snapshots (a) across repeat runs with
# --workers 4 and (b) between --workers 1 and --workers 4. The ordered
# batch merge makes every export independent of worker count; a diff here
# means a charge, counter or span escaped the batch-order replay.
echo "==> worker determinism (repeat run + workers 1 vs 4)"
DET_DIR="${DET_DIR:-target/ci-determinism}"
mkdir -p "$DET_DIR"
for run in a b; do
  cargo run --release -q --bin fidr -- run \
    --workload write-h --variant full --ops 2000 --workers 4 --cache-shards 4 \
    --metrics-out "$DET_DIR/w4-$run.json" > /dev/null
done
diff "$DET_DIR/w4-a.json" "$DET_DIR/w4-b.json"
cargo run --release -q --bin fidr -- run \
  --workload write-h --variant full --ops 2000 --workers 1 --cache-shards 4 \
  --metrics-out "$DET_DIR/w1.json" > /dev/null
diff "$DET_DIR/w1.json" "$DET_DIR/w4-a.json"
echo "    exports byte-identical"

# Tiered-scrubber determinism gate: with --tiered the cold-stream writes
# defer dedup to the background scrubber, whose table-SSD charges are
# replayed in group order. Metrics AND spans must still export
# byte-identical across worker counts (1/4/8). Write-L at 4000 ops is
# past the classifier's warm-up, so the deferred path genuinely runs
# (the dedup.deferred.count grep guards against this gate silently
# degenerating into the flat path).
echo "==> tiered-scrubber determinism (workers 1 vs 4 vs 8)"
for w in 1 4 8; do
  cargo run --release -q --bin fidr -- run \
    --workload write-l --variant full --ops 4000 --tiered \
    --workers "$w" --cache-shards 4 \
    --metrics-out "$DET_DIR/tiered-m$w.json" \
    --spans-out "$DET_DIR/tiered-s$w.json" > /dev/null
done
diff "$DET_DIR/tiered-m1.json" "$DET_DIR/tiered-m4.json"
diff "$DET_DIR/tiered-m1.json" "$DET_DIR/tiered-m8.json"
diff "$DET_DIR/tiered-s1.json" "$DET_DIR/tiered-s4.json"
diff "$DET_DIR/tiered-s1.json" "$DET_DIR/tiered-s8.json"
grep -q '"dedup.deferred.count"' "$DET_DIR/tiered-m1.json"
echo "    tiered exports byte-identical, scrubber exercised"

# Flat-vs-tiered ablation gate: at equal DRAM capacity the tiered
# admission policy must not lose modelled throughput on the
# mixed-locality workload (the acceptance snapshot shows ~1.09x), and
# deferred dedup must converge to the same reduction as inline dedup
# (dedup ratios within 0.01).
echo "==> tiered-cache ablation (tiered >= flat, dedup ratio converges)"
TIERED_OUT="${TIERED_OUT:-target/ci-tiered-cache.txt}"
FIDR_BENCH_OPS="${TIERED_GATE_OPS:-15000}" cargo bench -q -p fidr-bench \
  --bench ablation_tiered_cache > "$TIERED_OUT"
TIERED_SPEEDUP="$(sed -n 's/^tiered-cache: speedup=\([0-9.]*\).*/\1/p' "$TIERED_OUT")"
FLAT_DEDUP="$(sed -n 's/^tiered-cache: mode=flat .*dedup_ratio=\([0-9.]*\).*/\1/p' "$TIERED_OUT")"
TIERED_DEDUP="$(sed -n 's/^tiered-cache: mode=tiered .*dedup_ratio=\([0-9.]*\).*/\1/p' "$TIERED_OUT")"
if [ -z "$TIERED_SPEEDUP" ] || [ -z "$FLAT_DEDUP" ] || [ -z "$TIERED_DEDUP" ]; then
  echo "ablation_tiered_cache printed no machine-readable lines" >&2
  exit 1
fi
if ! awk -v s="$TIERED_SPEEDUP" 'BEGIN { exit !(s >= 1.0) }'; then
  echo "tiered-cache speedup=$TIERED_SPEEDUP < 1.0: tiered admission lost throughput" >&2
  exit 1
fi
if ! awk -v a="$FLAT_DEDUP" -v b="$TIERED_DEDUP" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= 0.01) }'; then
  echo "dedup ratio diverged: flat=$FLAT_DEDUP tiered=$TIERED_DEDUP" >&2
  exit 1
fi
echo "    speedup=${TIERED_SPEEDUP}x, dedup flat=$FLAT_DEDUP tiered=$TIERED_DEDUP"

# Loopback serving smoke test: stand the TCP front end up on an
# ephemeral port, drive it with 4 concurrent client connections of
# verified write/read traffic, wait for the auto-drain, and hold the
# final metrics export to zero rejected frames.
echo "==> loopback serve/client smoke"
SERVE_DIR="${SERVE_DIR:-target/ci-serve}"
mkdir -p "$SERVE_DIR"
rm -f "$SERVE_DIR/port" "$SERVE_DIR/metrics.json"
cargo run --release -q --bin fidr -- serve \
  --port 0 --port-file "$SERVE_DIR/port" --conns-limit 4 \
  --metrics-out "$SERVE_DIR/metrics.json" > "$SERVE_DIR/serve.log" &
SERVE_PID=$!
tries=0
while [ ! -s "$SERVE_DIR/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "server never wrote its port file" >&2
    kill "$SERVE_PID" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done
# The port file holds a full HOST:PORT address (published atomically).
cargo run --release -q --bin fidr -- client \
  --addr "$(cat "$SERVE_DIR/port")" --conns 4 --ops 200
wait "$SERVE_PID"
grep -q '"server.frames.rejected.count": { "type": "counter", "value": 0 }' \
  "$SERVE_DIR/metrics.json"
grep -q '"server.connections.accepted.count": { "type": "counter", "value": 4 }' \
  "$SERVE_DIR/metrics.json"
echo "    $(grep -o '"server.frames.decoded.count": { "type": "counter", "value": [0-9]*' \
  "$SERVE_DIR/metrics.json" | grep -o '[0-9]*$') frames served, 0 rejected"

# Churn-then-GC lifecycle smoke: seeded write/overwrite/delete churn,
# a full garbage-collection pass, then every surviving block re-read
# byte-exact. The subcommand itself exits non-zero on any survivor
# mismatch or when GC frees no space; the greps hold the exported
# metrics to the same claims (real deletes acked, real bytes
# reclaimed). CI uploads the metrics file as an inspectable artifact.
echo "==> churn-then-gc lifecycle smoke"
GC_DIR="${GC_DIR:-target/ci-gc}"
mkdir -p "$GC_DIR"
rm -f "$GC_DIR/metrics.json"
cargo run --release -q --bin fidr -- gc \
  --tenants 4 --blocks 64 --rounds 3 --delete-pct 40 \
  --metrics-out "$GC_DIR/metrics.json"
grep -q '"schema": "fidr.metrics.v1"' "$GC_DIR/metrics.json"
counter_of() {
  grep -o "\"$1\": { \"type\": \"counter\", \"value\": [0-9]*" \
    "$GC_DIR/metrics.json" | grep -o '[0-9]*$'
}
GC_DELETES="$(counter_of 'delete.acked.count')"
GC_FREED="$(counter_of 'gc.reclaimed_bytes')"
if [ -z "$GC_DELETES" ] || [ "$GC_DELETES" -eq 0 ]; then
  echo "churn acked no deletes (delete.acked.count=${GC_DELETES:-missing})" >&2
  exit 1
fi
if [ -z "$GC_FREED" ] || [ "$GC_FREED" -eq 0 ]; then
  echo "gc freed no space (gc.reclaimed_bytes=${GC_FREED:-missing})" >&2
  exit 1
fi
echo "    $GC_DELETES deletes acked, $GC_FREED bytes reclaimed, survivors verified"

# Live-telemetry smoke test: serve with a fast sampler, drive verified
# traffic, then scrape the still-running server in-band — JSON,
# Prometheus text and one `fidr top` frame — and shape-check all three.
# conns-limit counts the 4 traffic connections plus the 3 scrape
# connections, so the server auto-drains only after the last scrape.
# CI uploads the scrape files as inspectable artifacts.
echo "==> live telemetry scrape smoke"
TELEM_DIR="${TELEM_DIR:-target/ci-telemetry}"
mkdir -p "$TELEM_DIR"
rm -f "$TELEM_DIR/port" "$TELEM_DIR/scrape.json" "$TELEM_DIR/scrape.prom"
cargo run --release -q --bin fidr -- serve \
  --port 0 --port-file "$TELEM_DIR/port" --conns-limit 7 --sample-ms 50 \
  --metrics-out "$TELEM_DIR/metrics.json" > "$TELEM_DIR/serve.log" &
TELEM_PID=$!
tries=0
while [ ! -s "$TELEM_DIR/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "telemetry server never wrote its port file" >&2
    kill "$TELEM_PID" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done
TELEM_ADDR="$(cat "$TELEM_DIR/port")"
cargo run --release -q --bin fidr -- client --addr "$TELEM_ADDR" --conns 4 --ops 200
# Let a sampler tick land after the traffic so the ring is non-empty.
sleep 0.2
cargo run --release -q --bin fidr -- scrape --addr "$TELEM_ADDR" \
  --out "$TELEM_DIR/scrape.json"
cargo run --release -q --bin fidr -- scrape --addr "$TELEM_ADDR" --prom \
  --out "$TELEM_DIR/scrape.prom"
cargo run --release -q --bin fidr -- top --addr "$TELEM_ADDR" --iters 1 \
  > "$TELEM_DIR/top.txt"
wait "$TELEM_PID"
grep -q '"schema": "fidr.timeseries.v1"' "$TELEM_DIR/scrape.json"
grep -q '"seq": ' "$TELEM_DIR/scrape.json"
grep -q '"streams": \[' "$TELEM_DIR/scrape.json"
grep -q '# TYPE fidr_server_ops_write_count counter' "$TELEM_DIR/scrape.prom"
grep -q '^fidr_server_window_ops_rate ' "$TELEM_DIR/scrape.prom"
grep -q '^fidr top' "$TELEM_DIR/top.txt"
echo "    $(grep -c '"seq": ' "$TELEM_DIR/scrape.json") timeseries samples scraped in-band"

# 2-node cluster loopback smoke: stand two serving nodes up, install
# the consistent-hash bootstrap map, drive multi-tenant open-loop
# traffic through the fan-out client (inline read verification), drain
# node 2 — its blocks rehome to the survivor and the process exits on
# its own — then prove zero acked-write loss by re-reading every block
# the schedule wrote through the survivor. CI uploads both nodes'
# drain-time metrics as inspectable artifacts.
echo "==> 2-node cluster loopback smoke"
CLUSTER_DIR="${CLUSTER_DIR:-target/ci-cluster}"
mkdir -p "$CLUSTER_DIR"
rm -f "$CLUSTER_DIR/port1" "$CLUSTER_DIR/port2" \
  "$CLUSTER_DIR/node1-metrics.json" "$CLUSTER_DIR/node2-metrics.json"
# Node 1 accepts exactly 10 connections across the scripted sequence:
# bootstrap reshard (map fetch + install = 2), open-loop client
# (map fetch + 2 fan-out workers = 3), drain reshard (map fetch +
# node 2's rehome push + survivor install = 3), verify client
# (map fetch + 1 device = 2) — then auto-drains and writes its
# metrics. Node 2 exits via the drain handoff, so it needs no
# connection budget.
cargo run --release -q --bin fidr -- serve \
  --port 0 --node-id 1 --port-file "$CLUSTER_DIR/port1" --conns-limit 10 \
  --metrics-out "$CLUSTER_DIR/node1-metrics.json" > "$CLUSTER_DIR/node1.log" &
NODE1_PID=$!
cargo run --release -q --bin fidr -- serve \
  --port 0 --node-id 2 --port-file "$CLUSTER_DIR/port2" \
  --metrics-out "$CLUSTER_DIR/node2-metrics.json" > "$CLUSTER_DIR/node2.log" &
NODE2_PID=$!
for f in port1 port2; do
  tries=0
  while [ ! -s "$CLUSTER_DIR/$f" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "cluster node never wrote $f" >&2
      kill "$NODE1_PID" "$NODE2_PID" 2> /dev/null || true
      exit 1
    fi
    sleep 0.1
  done
done
NODE1_ADDR="$(cat "$CLUSTER_DIR/port1")"
NODE2_ADDR="$(cat "$CLUSTER_DIR/port2")"
cargo run --release -q --bin fidr -- reshard --nodes "$NODE1_ADDR,$NODE2_ADDR"
cargo run --release -q --bin fidr -- client --nodes "$NODE1_ADDR,$NODE2_ADDR" \
  --mode open --conns 2 --ops 300 --tenants 8
cargo run --release -q --bin fidr -- reshard --nodes "$NODE1_ADDR,$NODE2_ADDR" \
  --drain 2
wait "$NODE2_PID"
# Same spec as the traffic run: the verify pass re-derives every
# written block from it and must find all of them on the survivor.
cargo run --release -q --bin fidr -- client --nodes "$NODE1_ADDR" \
  --mode verify --ops 300 --tenants 8
wait "$NODE1_PID"
for m in node1-metrics.json node2-metrics.json; do
  grep -q '"schema": "fidr.metrics.v1"' "$CLUSTER_DIR/$m"
  grep -q '"server.frames.rejected.count": { "type": "counter", "value": 0 }' \
    "$CLUSTER_DIR/$m"
done
writes_on() {
  grep -o '"server.ops.write.count": { "type": "counter", "value": [0-9]*' \
    "$CLUSTER_DIR/$1" | grep -o '[0-9]*$'
}
W1="$(writes_on node1-metrics.json)"
W2="$(writes_on node2-metrics.json)"
if [ "$W1" -eq 0 ] || [ "$W2" -eq 0 ]; then
  echo "consistent-hash routing did not spread writes: node1=$W1 node2=$W2" >&2
  exit 1
fi
echo "    writes spread node1=$W1 node2=$W2, drain handed off, survivor verified"

# Wall-speedup regression gate: the persistent worker pool + multi-lane
# hashing must keep real wall-clock batch throughput scaling with
# --workers. The acceptance snapshot shows >= 1.5x at 4 workers
# (BENCH_pr6.json); the gate trips below 1.2x to leave headroom for
# loaded CI hosts while still catching a regression to the pre-pool
# behaviour (0.94x in BENCH_pr4.json). The gate auto-skips when the host
# exposes fewer than 4 CPUs (thread-level wall timing is meaningless
# there — the multi-lane SHA kernel still speeds such hosts up, but
# noisily); FIDR_SKIP_WALL_GATE=1 forces a skip on any host. The
# determinism gates above always run.
HOST_CPUS="$(nproc 2> /dev/null || getconf _NPROCESSORS_ONLN 2> /dev/null || echo 1)"
if [ "${FIDR_SKIP_WALL_GATE:-0}" = "1" ]; then
  echo "==> wall-speedup gate (skipped: FIDR_SKIP_WALL_GATE=1)"
elif [ "$HOST_CPUS" -lt 4 ]; then
  echo "==> wall-speedup gate (skipped: host_cpus=$HOST_CPUS < 4)"
else
  echo "==> wall-speedup gate (4-worker wall speedup >= 1.2x)"
  WALL_OUT="${WALL_OUT:-target/ci-worker-scaling.txt}"
  FIDR_BENCH_OPS="${WALL_GATE_OPS:-4000}" cargo bench -q -p fidr-bench \
    --bench ablation_worker_scaling > "$WALL_OUT"
  SPEEDUP="$(sed -n 's/^worker-scaling: wall_speedup_4x=\([0-9.]*\).*/\1/p' "$WALL_OUT")"
  if [ -z "$SPEEDUP" ]; then
    echo "ablation_worker_scaling printed no wall_speedup_4x line" >&2
    exit 1
  fi
  if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.2) }'; then
    echo "wall_speedup_4x=$SPEEDUP < 1.2: worker-pool wall scaling regressed" >&2
    echo "(FIDR_SKIP_WALL_GATE=1 bypasses this gate on unsuitable hosts)" >&2
    exit 1
  fi
  echo "    wall_speedup_4x=$SPEEDUP"
fi

echo "All checks passed."
