#!/usr/bin/env sh
# Full local gate: formatting, lints, docs and tests.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
