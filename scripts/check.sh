#!/usr/bin/env sh
# Full local gate: formatting, lints, docs and tests.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

# Release-profile pass: guards that must not compile away (e.g. the
# container-id reuse check, once a debug_assert!) stay enforced.
echo "==> cargo test --release"
cargo test --workspace --release -q

# Span-export smoke test: a small traced workload must produce a
# Perfetto-loadable fidr.spans.v1 file (the exporter validates the JSON
# shape before writing; the greps double-check the file on disk). CI
# uploads the file as an inspectable artifact.
echo "==> fidr spans export"
SPANS_OUT="${SPANS_OUT:-target/ci-spans.json}"
cargo run --release -q --bin fidr -- spans \
  --workload write-h --ops 500 --spans-out "$SPANS_OUT" > /dev/null
grep -q '"schema":"fidr.spans.v1"' "$SPANS_OUT"
grep -q '"traceEvents":\[' "$SPANS_OUT"
grep -q '"name":"write"' "$SPANS_OUT"
echo "    $SPANS_OUT: $(grep -c '"ph":"X"' "$SPANS_OUT") span events"

# Parallel-pipeline determinism gate: the same seeded workload must export
# byte-identical fidr.metrics.v1 snapshots (a) across repeat runs with
# --workers 4 and (b) between --workers 1 and --workers 4. The ordered
# batch merge makes every export independent of worker count; a diff here
# means a charge, counter or span escaped the batch-order replay.
echo "==> worker determinism (repeat run + workers 1 vs 4)"
DET_DIR="${DET_DIR:-target/ci-determinism}"
mkdir -p "$DET_DIR"
for run in a b; do
  cargo run --release -q --bin fidr -- run \
    --workload write-h --variant full --ops 2000 --workers 4 --cache-shards 4 \
    --metrics-out "$DET_DIR/w4-$run.json" > /dev/null
done
diff "$DET_DIR/w4-a.json" "$DET_DIR/w4-b.json"
cargo run --release -q --bin fidr -- run \
  --workload write-h --variant full --ops 2000 --workers 1 --cache-shards 4 \
  --metrics-out "$DET_DIR/w1.json" > /dev/null
diff "$DET_DIR/w1.json" "$DET_DIR/w4-a.json"
echo "    exports byte-identical"

# Loopback serving smoke test: stand the TCP front end up on an
# ephemeral port, drive it with 4 concurrent client connections of
# verified write/read traffic, wait for the auto-drain, and hold the
# final metrics export to zero rejected frames.
echo "==> loopback serve/client smoke"
SERVE_DIR="${SERVE_DIR:-target/ci-serve}"
mkdir -p "$SERVE_DIR"
rm -f "$SERVE_DIR/port" "$SERVE_DIR/metrics.json"
cargo run --release -q --bin fidr -- serve \
  --port 0 --port-file "$SERVE_DIR/port" --conns-limit 4 \
  --metrics-out "$SERVE_DIR/metrics.json" > "$SERVE_DIR/serve.log" &
SERVE_PID=$!
tries=0
while [ ! -s "$SERVE_DIR/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "server never wrote its port file" >&2
    kill "$SERVE_PID" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done
cargo run --release -q --bin fidr -- client \
  --addr "127.0.0.1:$(cat "$SERVE_DIR/port")" --conns 4 --ops 200
wait "$SERVE_PID"
grep -q '"server.frames.rejected.count": { "type": "counter", "value": 0 }' \
  "$SERVE_DIR/metrics.json"
grep -q '"server.connections.accepted.count": { "type": "counter", "value": 4 }' \
  "$SERVE_DIR/metrics.json"
echo "    $(grep -o '"server.frames.decoded.count": { "type": "counter", "value": [0-9]*' \
  "$SERVE_DIR/metrics.json" | grep -o '[0-9]*$') frames served, 0 rejected"

# Wall-speedup regression gate: the persistent worker pool + multi-lane
# hashing must keep real wall-clock batch throughput scaling with
# --workers. The acceptance snapshot shows >= 1.5x at 4 workers
# (BENCH_pr6.json); the gate trips below 1.2x to leave headroom for
# loaded CI hosts while still catching a regression to the pre-pool
# behaviour (0.94x in BENCH_pr4.json). Set FIDR_SKIP_WALL_GATE=1 to
# bypass on hosts where wall timing is meaningless (emulation, heavy
# shared load); the determinism gates above still run.
if [ "${FIDR_SKIP_WALL_GATE:-0}" = "1" ]; then
  echo "==> wall-speedup gate (skipped: FIDR_SKIP_WALL_GATE=1)"
else
  echo "==> wall-speedup gate (4-worker wall speedup >= 1.2x)"
  WALL_OUT="${WALL_OUT:-target/ci-worker-scaling.txt}"
  FIDR_BENCH_OPS="${WALL_GATE_OPS:-4000}" cargo bench -q -p fidr-bench \
    --bench ablation_worker_scaling > "$WALL_OUT"
  SPEEDUP="$(sed -n 's/^worker-scaling: wall_speedup_4x=\([0-9.]*\).*/\1/p' "$WALL_OUT")"
  if [ -z "$SPEEDUP" ]; then
    echo "ablation_worker_scaling printed no wall_speedup_4x line" >&2
    exit 1
  fi
  if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.2) }'; then
    echo "wall_speedup_4x=$SPEEDUP < 1.2: worker-pool wall scaling regressed" >&2
    echo "(FIDR_SKIP_WALL_GATE=1 bypasses this gate on unsuitable hosts)" >&2
    exit 1
  fi
  echo "    wall_speedup_4x=$SPEEDUP"
fi

echo "All checks passed."
