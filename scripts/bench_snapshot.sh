#!/usr/bin/env sh
# Bench snapshot: runs the cheap per-workload experiments and records the
# projected throughput plus a per-stage latency breakdown (p50/p99 of the
# modelled span durations) into BENCH_<tag>.json at the repository root.
#
# Usage: ./scripts/bench_snapshot.sh [tag]   (default tag: pr7)
#
# Throughput comes from the §7.5 projection printed by `fidr run`; stage
# latencies come from the fidr.spans.v1 files exported by `fidr spans`.
# Span durations are modelled time, so for a given binary the latency
# numbers are bit-reproducible; only future model changes move them.
# The worker_scaling section comes from the ablation_worker_scaling
# bench: its modelled speedup is deterministic; its wall GB/s is the
# median of three repeats with the min/max spread recorded alongside, a
# first-class regression-gated number since the persistent worker pool +
# multi-lane hashing landed (see docs/PERFORMANCE.md).
set -eu

TAG="${1:-pr7}"
OUT="BENCH_${TAG}.json"
OPS="${OPS:-2000}"
# Same CPU detection as scripts/check.sh's wall-gate skip, so the
# recorded host_cpus always matches the gating decision (the bench's own
# available_parallelism print is cross-checked against this in the JSON).
HOST_CPUS="$(nproc 2> /dev/null || getconf _NPROCESSORS_ONLN 2> /dev/null || echo 1)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release -q --bin fidr

for wl in write-h write-m write-l read-mixed; do
    for variant in full baseline; do
        ./target/release/fidr run --workload "$wl" --variant "$variant" \
            --ops "$OPS" > "$TMP/run-$wl-$variant.txt"
    done
    ./target/release/fidr spans --workload "$wl" --variant full \
        --ops "$OPS" --spans-out "$TMP/spans-$wl.json" > /dev/null
done

# Worker-scaling ablation (write-heavy, one cache shard per worker).
FIDR_BENCH_OPS="${SCALING_OPS:-20000}" cargo bench -q -p fidr-bench \
    --bench ablation_worker_scaling > "$TMP/worker-scaling.txt"

# Tiered-cache ablation (mixed-locality streams, flat vs tiered
# admission at equal DRAM capacity).
FIDR_BENCH_OPS="${TIERED_OPS:-15000}" cargo bench -q -p fidr-bench \
    --bench ablation_tiered_cache > "$TMP/tiered-cache.txt"

TMP="$TMP" OPS="$OPS" TAG="$TAG" OUT="$OUT" HOST_CPUS="$HOST_CPUS" python3 - <<'EOF'
import json, os, re

tmp, out = os.environ["TMP"], os.environ["OUT"]
doc = {
    "schema": "fidr.bench.v1",
    "tag": os.environ["TAG"],
    "ops_per_workload": int(os.environ["OPS"]),
    "host_cpus": int(os.environ["HOST_CPUS"]),
    "workloads": {},
}

def pct(sorted_vals, q):
    return sorted_vals[min(len(sorted_vals) - 1, int(q * len(sorted_vals)))]

for wl in ["write-h", "write-m", "write-l", "read-mixed"]:
    entry = {"throughput_gbps": {}, "stages": {}}
    for variant in ["full", "baseline"]:
        text = open(f"{tmp}/run-{wl}-{variant}.txt").read()
        m = re.search(r"achievable: ([0-9.]+) GB/s \(bottleneck: ([^)]+)\)", text)
        entry["throughput_gbps"][variant] = {
            "value": float(m.group(1)),
            "bottleneck": m.group(2),
        }
    spans = json.load(open(f"{tmp}/spans-{wl}.json"))["traceEvents"]
    durs = {}
    for ev in spans:
        durs.setdefault(ev["name"], []).append(float(ev["dur"]))  # microseconds
    for name, vals in sorted(durs.items()):
        vals.sort()
        entry["stages"][name] = {
            "count": len(vals),
            "p50_us": round(pct(vals, 0.50), 3),
            "p99_us": round(pct(vals, 0.99), 3),
        }
    doc["workloads"][wl] = entry

# Worker-scaling ablation: modelled numbers are deterministic per seed;
# wall numbers are medians of three repeats (min/max spread alongside)
# and are regression-gated by scripts/check.sh.
scaling = {"workload": "write-h", "rows": []}
for line in open(f"{tmp}/worker-scaling.txt"):
    m = re.match(
        r"worker-scaling: workers=(\d+) wall_gbps=([0-9.]+) wall_gbps_min=([0-9.]+) "
        r"wall_gbps_max=([0-9.]+) wall_gbps_warmup=([0-9.]+) modelled_gbps=([0-9.]+)",
        line,
    )
    if m:
        scaling["rows"].append(
            {
                "workers": int(m.group(1)),
                "wall_gbps": float(m.group(2)),
                "wall_gbps_min": float(m.group(3)),
                "wall_gbps_max": float(m.group(4)),
                "wall_gbps_warmup": float(m.group(5)),
                "modelled_gbps": float(m.group(6)),
            }
        )
    m = re.match(
        r"worker-scaling: wall_speedup_4x=([0-9.]+) modelled_speedup_4x=([0-9.]+) host_cpus=(\d+)",
        line,
    )
    if m:
        scaling["wall_speedup_4x"] = float(m.group(1))
        scaling["modelled_speedup_4x"] = float(m.group(2))
        scaling["host_cpus"] = int(m.group(3))
doc["worker_scaling"] = scaling

# Tiered-cache ablation: everything here is modelled (deterministic per
# seed). Gated by scripts/check.sh: speedup >= 1.0 and the two dedup
# ratios within 0.01 of each other.
tiered = {"workload": "mixed-locality", "modes": {}}
for line in open(f"{tmp}/tiered-cache.txt"):
    m = re.match(
        r"tiered-cache: mode=(\w+) modelled_gbps=([0-9.]+) dedup_ratio=([0-9.]+) "
        r"cache_hit=([0-9.]+) deferred=(\d+) scrub_dups=(\d+) cold_fetches=(\d+)",
        line,
    )
    if m:
        tiered["modes"][m.group(1)] = {
            "modelled_gbps": float(m.group(2)),
            "dedup_ratio": float(m.group(3)),
            "cache_hit": float(m.group(4)),
            "deferred": int(m.group(5)),
            "scrub_dups": int(m.group(6)),
            "cold_fetches": int(m.group(7)),
        }
    m = re.match(r"tiered-cache: speedup=([0-9.]+) dram_lines=(\d+)", line)
    if m:
        tiered["speedup"] = float(m.group(1))
        tiered["dram_lines"] = int(m.group(2))
doc["tiered_cache"] = tiered

with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
EOF
